// Distributed: the paper's distributed-memory story — a 2-D heat domain
// decomposed over a Cartesian rank grid (here 3 rank rows × 2 rank
// columns), with every rank running the online ABFT scheme on its own
// tile, no checksum communication at all. The ranks exchange halo rows and
// columns through the dist Transport seam (the default in-process channel
// backend here; a real MPI or socket transport drops in via
// Spec.Transport), with corner data threaded through the edge messages so
// even box kernels stay exact across tile seams. One rank detects and
// corrects a bit-flip locally while the others never even notice — the
// "intrinsically parallel" property of Section 1. Setting Ranks: 6 instead
// of the rank grid reproduces the paper's 1-D row bands with the same
// code.
package main

import (
	"fmt"
	"log"

	abft "stencilabft"
)

const (
	nx, ny         = 96, 120
	ranksX, ranksY = 2, 3
	iterations     = 80
)

func main() {
	op := &abft.Op2D[float64]{St: abft.Laplace5(0.22), BC: abft.Clamp}
	init := abft.New[float64](nx, ny)
	init.FillFunc(func(x, y int) float64 {
		if y > ny/3 && y < 2*ny/3 {
			return 450 // hot band in the middle of the domain
		}
		return 300
	})

	// Single-process reference for comparison.
	ref, err := abft.Build(abft.Spec[float64]{Op2D: op, Init: init})
	if err != nil {
		log.Fatal(err)
	}
	ref.Run(iterations)

	// Same operator and domain, clustered deployment over a 3x2 rank
	// grid: only the Spec changes. A bit-flip lands right at the seam
	// corner of rank 0's tile (columns 0..47, rows 0..39) — the point
	// three neighbouring tiles read as halo data — and is still detected
	// and repaired by rank 0 alone, before the next exchange exports it.
	p, err := abft.Build(abft.Spec[float64]{
		Scheme:     abft.Online,
		Deployment: abft.Clustered,
		Op2D:       op,
		Init:       init,
		RanksX:     ranksX,
		RanksY:     ranksY,
		Detector:   abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
		Inject:     abft.NewPlan(abft.Injection{Iteration: 33, X: 47, Y: 39, Bit: 59}),
	})
	if err != nil {
		log.Fatal(err)
	}
	p.Run(iterations)

	fmt.Printf("domain %dx%d over a %dx%d rank grid, %d iterations, one injected bit-flip\n\n",
		nx, ny, ranksY, ranksX, iterations)
	fmt.Println("rank  tile               detections  corrected  halo msgs (u/d/l/r)")
	cluster := p.(*abft.Cluster[float64])
	for i, s := range cluster.RankStats() {
		h := s.HaloByDir
		fmt.Printf("%4d  %-17v  %10d  %9d  %d/%d/%d/%d\n",
			i, cluster.Tile(i), s.Detections, s.CorrectedPoints, h[0], h[1], h[2], h[3])
	}

	diff := p.Grid().MaxAbsDiff(ref.Grid())
	fmt.Printf("\nmax deviation from the single-process error-free run: %g\n", diff)

	ts := p.Stats() // the per-rank counters merged
	fmt.Printf("topology: %s\n", ts.Topology)
	if ts.Detections == 0 || ts.CorrectedPoints == 0 {
		log.Fatal("the injected corruption was not handled")
	}
	if diff > 1e-6 {
		log.Fatalf("residual error %g too large", diff)
	}
	fmt.Println("the owning rank repaired the corruption locally; no rank exchanged a checksum")

	// The same cluster over the TCP socket backend: NewTCPTransport hosts
	// all six ranks in this process, but every halo strip and barrier
	// token crosses a real loopback socket in the library's length-
	// prefixed wire format — the single-process way to exercise exactly
	// the code path a multi-process deployment runs. (For real
	// multi-process clusters, each process sets Spec.Transport:
	// TransportTCP with its own Rank and a shared Rendezvous — or use
	// `stencilrun -launch N`, which forks and verifies one for you.)
	tcp, err := abft.NewTCPTransport[float64](abft.TCPConfig{RanksX: ranksX, RanksY: ranksY})
	if err != nil {
		log.Fatal(err)
	}
	defer tcp.Close()
	pt, err := abft.Build(abft.Spec[float64]{
		Scheme:     abft.Online,
		Deployment: abft.Clustered,
		Op2D:       op,
		Init:       init,
		RanksX:     ranksX,
		RanksY:     ranksY,
		NewTransport: func(rx, ry int, ring bool) abft.Transport[float64] {
			return tcp
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	pt.Run(iterations)
	if d := pt.Grid().MaxAbsDiff(ref.Grid()); d != 0 {
		log.Fatalf("tcp-backed cluster deviates from the reference by %g", d)
	}
	fmt.Println("\nsame run over the TCP transport (loopback sockets): bit-identical to the reference")
}
