// Distributed: the paper's distributed-memory story — a 2-D heat domain
// decomposed into row bands across simulated ranks, with every rank running
// the online ABFT scheme on its own band, no checksum communication at all.
// The ranks exchange halo rows through the dist Transport seam (the default
// in-process channel backend here; a real MPI or socket transport drops in
// via Spec.Transport). One rank detects and corrects a bit-flip locally
// while the others never even notice — the "intrinsically parallel"
// property of Section 1.
package main

import (
	"fmt"
	"log"

	abft "stencilabft"
)

const (
	nx, ny     = 96, 120
	ranks      = 6
	iterations = 80
)

func main() {
	op := &abft.Op2D[float64]{St: abft.Laplace5(0.22), BC: abft.Clamp}
	init := abft.New[float64](nx, ny)
	init.FillFunc(func(x, y int) float64 {
		if y > ny/3 && y < 2*ny/3 {
			return 450 // hot band in the middle of the domain
		}
		return 300
	})

	// Single-process reference for comparison.
	ref, err := abft.Build(abft.Spec[float64]{Op2D: op, Init: init})
	if err != nil {
		log.Fatal(err)
	}
	ref.Run(iterations)

	// Same operator and domain, clustered deployment: only the Spec
	// changes. A bit-flip lands in rank 2's band (rows 40..59) and is
	// routed to that rank.
	p, err := abft.Build(abft.Spec[float64]{
		Scheme:     abft.Online,
		Deployment: abft.Clustered,
		Op2D:       op,
		Init:       init,
		Ranks:      ranks,
		Detector:   abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
		Inject:     abft.NewPlan(abft.Injection{Iteration: 33, X: 50, Y: 47, Bit: 59}),
	})
	if err != nil {
		log.Fatal(err)
	}
	p.Run(iterations)

	fmt.Printf("domain %dx%d over %d ranks, %d iterations, one injected bit-flip\n\n",
		nx, ny, ranks, iterations)
	fmt.Println("rank  detections  corrected")
	cluster := p.(*abft.Cluster[float64])
	for i, s := range cluster.RankStats() {
		fmt.Printf("%4d  %10d  %9d\n", i, s.Detections, s.CorrectedPoints)
	}

	diff := p.Grid().MaxAbsDiff(ref.Grid())
	fmt.Printf("\nmax deviation from the single-process error-free run: %g\n", diff)

	ts := p.Stats() // the per-rank counters merged
	if ts.Detections == 0 || ts.CorrectedPoints == 0 {
		log.Fatal("the injected corruption was not handled")
	}
	if diff > 1e-6 {
		log.Fatalf("residual error %g too large", diff)
	}
	fmt.Println("the owning rank repaired the corruption locally; no rank exchanged a checksum")
}
