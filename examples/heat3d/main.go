// Heat3d: the paper's evaluation scenario end to end — a HotSpot3D-style
// thermal simulation of a processor die, protected per layer by the 3-D
// online ABFT scheme, under a small fault-injection campaign. Reports the
// arithmetic error with and without protection, the comparison at the heart
// of the paper's Figure 9.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	abft "stencilabft"
)

const (
	nx, ny, nz = 64, 64, 8
	iterations = 128
	campaign   = 10 // injected runs per method
)

// buildOp assembles a HotSpot3D-shaped operator: a seven-point stencil
// whose weights are a stable thermal discretisation, plus a power-source
// constant field concentrated in two "functional units".
func buildOp() *abft.Op3D[float32] {
	const (
		lateral  = 0.06 // x/y conduction weight
		vertical = 0.11 // z conduction weight
		ambient  = 0.02 // leakage to ambient
	)
	centre := float32(1 - 4*lateral - 2*vertical - ambient)
	st := abft.SevenPoint3D(centre, lateral, lateral, lateral, lateral, vertical, vertical)

	power := abft.New3D[float32](nx, ny, nz)
	power.FillFunc(func(x, y, z int) float32 {
		c := float32(ambient * 80) // ambient coupling at 80 C
		if z == 0 && x >= 10 && x < 26 && y >= 40 && y < 56 {
			c += 0.9 // ALU cluster
		}
		if z == 0 && x >= 40 && x < 60 && y >= 8 && y < 20 {
			c += 0.6 // L2 bank
		}
		return c
	})
	return &abft.Op3D[float32]{St: st, BC: abft.Clamp, C: power}
}

func initialTemperature() *abft.Grid3D[float32] {
	t := abft.New3D[float32](nx, ny, nz)
	t.FillFunc(func(x, y, z int) float32 { return 80 })
	return t
}

// l2 computes the arithmetic error of Equation (11).
func l2(a, b *abft.Grid3D[float32]) float64 {
	var sum float64
	da, db := a.Data(), b.Data()
	for i := range da {
		d := float64(da[i]) - float64(db[i])
		sum += d * d
	}
	return math.Sqrt(sum)
}

func main() {
	op := buildOp()
	init := initialTemperature()
	pool := abft.NewPool()

	// Error-free reference run.
	ref, err := abft.Build(abft.Spec[float32]{Op3D: op, Init3D: init})
	if err != nil {
		log.Fatal(err)
	}
	ref.Run(iterations)

	rng := rand.New(rand.NewSource(2019))
	var unprotected, protected []float64
	detected := 0
	for rep := 0; rep < campaign; rep++ {
		inj := abft.Injection{
			Iteration: rng.Intn(iterations),
			X:         rng.Intn(nx), Y: rng.Intn(ny), Z: rng.Intn(nz),
			Bit: 23 + rng.Intn(9), // exponent and sign bits: visible corruption
		}
		plan := abft.NewPlan(inj)
		base, err := abft.Build(abft.Spec[float32]{
			Op3D: op, Init3D: init, Pool: pool, Inject: plan,
		})
		if err != nil {
			log.Fatal(err)
		}
		base.Run(iterations)
		unprotected = append(unprotected, l2(base.Grid3D(), ref.Grid3D()))

		prot, err := abft.Build(abft.Spec[float32]{
			Scheme: abft.Online, Op3D: op, Init3D: init, Pool: pool, Inject: plan,
		})
		if err != nil {
			log.Fatal(err)
		}
		prot.Run(iterations)
		protected = append(protected, l2(prot.Grid3D(), ref.Grid3D()))
		if prot.Stats().Detections > 0 {
			detected++
		}
	}

	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	fmt.Printf("HotSpot3D %dx%dx%d, %d iterations, %d injected runs\n", nx, ny, nz, iterations, campaign)
	fmt.Printf("peak temperature (reference): %.2f C\n", maxOf(ref.Grid3D()))
	fmt.Printf("mean arithmetic error, unprotected:   %.4g\n", mean(unprotected))
	fmt.Printf("mean arithmetic error, online ABFT:   %.4g\n", mean(protected))
	fmt.Printf("injections detected: %d/%d\n", detected, campaign)
}

func maxOf(g *abft.Grid3D[float32]) float32 {
	m := float32(math.Inf(-1))
	for _, v := range g.Data() {
		if v > m {
			m = v
		}
	}
	return m
}
