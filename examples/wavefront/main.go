// Wavefront: an asymmetric upwind advection stencil under clamp
// boundaries — the configuration where the paper's simplified checksum
// interpolation (boundary terms dropped) breaks down, and this library's
// exact alpha/beta evaluation is required. The example runs the same
// error-free transport problem with both interpolation variants and shows
// that the exact one stays silent while the simplified one drowns in false
// positives.
package main

import (
	"fmt"
	"log"

	abft "stencilabft"
)

const (
	nx, ny     = 192, 96
	iterations = 150
)

// buildOp returns a first-order upwind advection operator: mass flows
// toward +x/+y, and the east/west weights are deliberately unequal so the
// clamp-boundary terms do not cancel.
func buildOp() *abft.Op2D[float32] {
	const cx, cy = 0.35, 0.15
	st := abft.NewStencil[float32]("upwind-advect",
		abft.Point[float32]{DX: 0, DY: 0, W: 1 - cx - cy},
		abft.Point[float32]{DX: -1, DY: 0, W: cx},
		abft.Point[float32]{DX: 0, DY: -1, W: cy},
	)
	return &abft.Op2D[float32]{St: st, BC: abft.Clamp}
}

func initial() *abft.Grid[float32] {
	g := abft.New[float32](nx, ny)
	g.FillFunc(func(x, y int) float32 {
		if x < 12 { // inflow slab on the left edge
			return 100
		}
		return 1
	})
	return g
}

func runWith(drop bool) abft.Stats {
	p, err := abft.Build(abft.Spec[float32]{
		Scheme:            abft.Online,
		Op2D:              buildOp(),
		Init:              initial(),
		Pool:              abft.NewPool(),
		DropBoundaryTerms: drop,
	})
	if err != nil {
		log.Fatal(err)
	}
	p.Run(iterations)
	return p.Stats()
}

func main() {
	exact := runWith(false)
	dropped := runWith(true)

	fmt.Printf("upwind advection on %dx%d, %d error-free iterations, clamp boundaries\n\n", nx, ny, iterations)
	fmt.Printf("%-34s detections=%d corrected=%d\n", "exact alpha/beta (this library):", exact.Detections, exact.CorrectedPoints)
	fmt.Printf("%-34s detections=%d corrected=%d\n", "dropped terms (paper listing):", dropped.Detections, dropped.CorrectedPoints)
	fmt.Println()
	if exact.Detections != 0 {
		log.Fatal("exact interpolation raised false positives on an error-free run")
	}
	if dropped.Detections == 0 {
		log.Fatal("expected the simplified interpolation to misfire on an asymmetric stencil")
	}
	fmt.Println("the exact boundary terms keep asymmetric stencils false-positive-free;")
	fmt.Println("the simplified variant is only safe for periodic boundaries or symmetric weights")
}
