// Quickstart: protect a 2-D Jacobi heat kernel against silent data
// corruption with the online ABFT scheme, inject a bit-flip, and watch it
// get detected and corrected — all through the unified Spec/Build factory.
package main

import (
	"fmt"
	"log"

	abft "stencilabft"
)

func main() {
	const nx, ny, iterations = 128, 128, 200

	// A five-point heat-diffusion kernel with clamp boundaries: the same
	// kernel family as the paper's Figure 2.
	op := &abft.Op2D[float32]{
		St: abft.Laplace5[float32](0.2),
		BC: abft.Clamp,
	}

	// Initial condition: a hot square in a cool domain.
	init := abft.New[float32](nx, ny)
	init.FillFunc(func(x, y int) float32 {
		if x > nx/4 && x < 3*nx/4 && y > ny/4 && y < 3*ny/4 {
			return 400
		}
		return 300
	})

	// Declare the run: the online protector verifies (and corrects) after
	// every sweep, rows partitioned over GOMAXPROCS workers, with a single
	// bit-flip planned for the top exponent bit of one point during
	// iteration 77 — the classic SDC the paper defends against.
	p, err := abft.Build(abft.Spec[float32]{
		Scheme: abft.Online,
		Op2D:   op,
		Init:   init,
		Pool:   abft.NewPool(),
		Inject: abft.NewPlan(abft.Injection{Iteration: 77, X: 13, Y: 99, Bit: 30}),
	})
	if err != nil {
		log.Fatal(err)
	}

	p.Run(iterations)
	p.Finalize()

	stats := p.Stats()
	fmt.Printf("ran %d iterations on %dx%d\n", stats.Iterations, nx, ny)
	fmt.Printf("detections: %d, corrected points: %d\n", stats.Detections, stats.CorrectedPoints)
	fmt.Printf("centre temperature: %.2f\n", p.Grid().At(nx/2, ny/2))
	if stats.Detections == 0 {
		log.Fatal("the injected corruption went undetected")
	}
	fmt.Println("the injected bit-flip was detected and corrected on the fly")
}
