// Package stencilabft is a Go implementation of "Algorithm-Based Fault
// Tolerance for Parallel Stencil Computations" (Cavelan & Ciorba, CLUSTER
// 2019): checksum-based detection and correction of silent data corruptions
// (SDCs, e.g. memory bit-flips) in arbitrary 2-D and 3-D stencil
// computations.
//
// # The method in one paragraph
//
// A stencil sweep does not preserve the row/column checksums of its domain,
// so classic ABFT cannot compare checksums across iterations. The paper's
// insight is that the checksums of iteration t+1 can be *interpolated* from
// the checksums of iteration t by applying the stencil kernel, collapsed to
// one dimension, to the checksum vectors themselves (plus boundary terms
// that depend only on the domain's edge strips). Comparing the interpolated
// checksum with the directly computed one detects corruption; intersecting
// the mismatching row and column indices locates it; and simple algebra on
// the checksums recovers the original value.
//
// # Quick start
//
// Declare the run as a Spec and hand it to Build — one factory for every
// scheme × deployment × dimensionality combination:
//
//	op := &stencilabft.Op2D[float32]{
//		St: stencilabft.Laplace5[float32](0.2),
//		BC: stencilabft.Clamp,
//	}
//	p, err := stencilabft.Build(stencilabft.Spec[float32]{
//		Scheme: stencilabft.Online, // verify + correct every sweep, ~8% overhead
//		Op2D:   op,
//		Init:   initialGrid,
//	})
//	if err != nil { ... }
//	p.Run(iterations)
//	p.Finalize() // no-op for online; offline verifies the partial period
//	result, stats := p.Grid(), p.Stats()
//
// Swapping Scheme to Offline (periodic checkpoint/rollback), Blocked
// (per-tile checksums) or None (the unprotected baseline) — or Deployment
// to Clustered (row bands over ranks exchanging halos through the Transport
// seam) — changes nothing else about the calling code: every protector
// satisfies the unified Protector interface. Fault-injection campaigns set
// Spec.Inject (a declarative bit-flip Plan) or Spec.InjectSource (a custom
// hook); Step then applies them with no per-call plumbing.
//
// See examples/ for complete programs and DESIGN.md for the architecture
// and the Unified API section for the Build registry. Build + Spec is the
// only construction path: the pre-Spec per-scheme constructors were removed
// after a deprecation cycle (DESIGN.md §11 maps each to its Spec form).
// Specs without process-local state also have a JSON wire form — see
// WireSpec and API.md — which is what cmd/stencilserve serves.
//
// # Choosing a scheme
//
//   - Online: verification after every sweep, on-the-fly correction with a
//     small floating-point residual. Lowest time-to-detection; no
//     checkpoint memory.
//   - Offline: verification every Period sweeps, recovery by rollback to an
//     in-memory checkpoint and recomputation — the error is erased exactly,
//     at the cost of checkpoint memory and a recomputation spike.
//   - Blocked: the online scheme per tile; small tiles keep checksum
//     magnitudes (and the detection floor) low.
//   - None: the unprotected baseline.
//
// All protectors run the same sweep engine and accept a worker Pool for
// row-partitioned (2-D) or layer-partitioned (3-D) parallel execution.
package stencilabft

import (
	"stencilabft/internal/blocks"
	"stencilabft/internal/checksum"
	"stencilabft/internal/core"
	"stencilabft/internal/dist"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/stencil"
)

// Float is the element-type constraint: float32 or float64. The paper's
// experiments use float32; float64 lowers the detection floor by nine
// orders of magnitude.
type Float = num.Float

// Grid is a dense 2-D domain. See New.
type Grid[T Float] = grid.Grid[T]

// Grid3D is a dense 3-D domain stored as z-layers. See New3D.
type Grid3D[T Float] = grid.Grid3D[T]

// New allocates an nx-by-ny grid initialised to zero.
func New[T Float](nx, ny int) *Grid[T] { return grid.New[T](nx, ny) }

// New3D allocates an nx-by-ny-by-nz grid initialised to zero.
func New3D[T Float](nx, ny, nz int) *Grid3D[T] { return grid.New3D[T](nx, ny, nz) }

// Boundary selects how out-of-domain points are resolved.
type Boundary = grid.Boundary

// Boundary conditions.
const (
	Clamp    = grid.Clamp    // repeat the border value (paper's "bounce-back")
	Periodic = grid.Periodic // wrap around; boundary terms vanish
	Mirror   = grid.Mirror   // reflect about the border
	Constant = grid.Constant // substitute a fixed ghost value
	Zero     = grid.Zero     // treat ghosts as zero ("empty boundaries")
)

// Point is one weighted stencil offset.
type Point[T Float] = stencil.Point[T]

// Stencil is an arbitrary set of weighted offsets (the paper's S).
type Stencil[T Float] = stencil.Stencil[T]

// Op2D binds a 2-D stencil to its boundary condition and optional constant
// field.
type Op2D[T Float] = stencil.Op2D[T]

// Op3D binds a (possibly 3-D) stencil to a 3-D sweep context.
type Op3D[T Float] = stencil.Op3D[T]

// Pool partitions sweeps over workers; nil runs sequentially.
type Pool = stencil.Pool

// NewPool returns a pool sized to GOMAXPROCS.
func NewPool() *Pool { return stencil.NewPool() }

// FivePoint builds the classic 2-D five-point stencil with individual
// weights for centre, west, east, north and south.
func FivePoint[T Float](c, w, e, n, s T) *Stencil[T] { return stencil.FivePoint(c, w, e, n, s) }

// Laplace5 returns the five-point Jacobi heat kernel
// u' = u + alpha*(sum of neighbours - 4u).
func Laplace5[T Float](alpha T) *Stencil[T] { return stencil.Laplace5(alpha) }

// Jacobi4 returns the paper's four-point averaging example stencil.
func Jacobi4[T Float]() *Stencil[T] { return stencil.Jacobi4[T]() }

// BoxBlur returns the 3x3 uniform averaging stencil.
func BoxBlur[T Float]() *Stencil[T] { return stencil.BoxBlur[T]() }

// SevenPoint3D returns the 3-D seven-point stencil (centre, west, east,
// north, south, below, above) — the HotSpot3D shape.
func SevenPoint3D[T Float](c, w, e, n, s, b, a T) *Stencil[T] {
	return stencil.SevenPoint3D(c, w, e, n, s, b, a)
}

// Advect2D returns the asymmetric first-order upwind advection stencil
// u' = u - cx*(u - u_west) - cy*(u - u_north); its boundary terms do not
// cancel under clamp, exercising the exact Theorem-1 interpolation path.
func Advect2D[T Float](cx, cy T) *Stencil[T] { return stencil.Advect2D(cx, cy) }

// NewStencil builds a custom stencil from explicit points.
func NewStencil[T Float](name string, points ...Point[T]) *Stencil[T] {
	return &Stencil[T]{Name: name, Points: points}
}

// Detector compares direct against interpolated checksums.
type Detector[T Float] = checksum.Detector[T]

// Stats is the unified counter model every protector reports through:
// per-rank and per-block counters roll up with Merge instead of living in
// parallel structs.
type Stats = core.Stats

// Online2D is the per-iteration detect-and-correct protector (Section 3).
type Online2D[T Float] = core.Online2D[T]

// Offline2D is the periodic-detection protector with checkpoint/rollback
// recovery (Section 4).
type Offline2D[T Float] = core.Offline2D[T]

// None2D is the unprotected baseline runner.
type None2D[T Float] = core.None2D[T]

// Online3D applies the online scheme per z-layer with exact cross-layer
// checksum coupling.
type Online3D[T Float] = core.Online3D[T]

// Offline3D applies the offline scheme to 3-D domains.
type Offline3D[T Float] = core.Offline3D[T]

// None3D is the unprotected 3-D baseline runner.
type None3D[T Float] = core.None3D[T]

// RecoveryMode selects the offline repair strategy.
type RecoveryMode = core.RecoveryMode

// Offline recovery strategies.
const (
	// FullRollback restores the whole domain from the last checkpoint
	// (the paper's Section 4.2 scheme).
	FullRollback = core.FullRollback
	// ConeRecovery recomputes only the error's light cone, falling back
	// to FullRollback when the cone cannot be bounded.
	ConeRecovery = core.ConeRecovery
)

// Cluster is the 2-D distributed-memory deployment: the domain decomposed
// over a Cartesian rank grid of simulated ranks (Spec.RanksX × Spec.RanksY,
// or Spec.Ranks row bands) exchanging halo strips through the Transport
// seam, each rank running the online ABFT scheme on its own tile. It
// satisfies the unified Protector contract (Grid gathers the global
// domain); RankStats exposes the per-rank counters Stats merges, including
// the topology shape and per-direction halo traffic.
type Cluster[T Float] = dist.Cluster[T]

// Cluster3D is the 3-D distributed-memory deployment: the domain
// decomposed into z-layer slabs over Spec.Ranks simulated ranks, each
// running the per-layer online ABFT scheme on its own slab — structurally
// the 1-D band cluster lifted one dimension. Built by Build from a 3-D
// Clustered spec.
type Cluster3D[T Float] = dist.Cluster3D[T]

// Calibration reports the error-free checksum noise floor of a
// configuration, used to pick a detection threshold.
type Calibration[T Float] = core.Calibration[T]

// CalibrateEpsilon measures the floating-point checksum noise floor of op
// on init over iters error-free sweeps and suggests a detection threshold
// with a safety margin — the measurement behind the paper's epsilon = 1e-5
// choice.
func CalibrateEpsilon[T Float](op *Op2D[T], init *Grid[T], iters int) (Calibration[T], error) {
	return core.CalibrateEpsilon(op, init, iters)
}

// Blocked2D applies the online scheme per chunk of a tiled 2-D domain
// (paper Section 3.4): each block owns its checksums, keeping magnitudes —
// and with them the floating-point detection floor — low.
type Blocked2D[T Float] = blocks.Protector[T]

// Injection describes one planned bit-flip for fault-injection campaigns.
type Injection = fault.Injection

// Plan schedules injections by iteration; Spec.Inject consumes it.
type Plan = fault.Plan

// NewPlan builds a fault plan from explicit injections.
func NewPlan(injs ...Injection) *Plan { return fault.NewPlan(injs...) }

// Injector adapts a plan to the InjectSource seam the protectors consult
// each iteration.
type Injector[T Float] = fault.Injector[T]

// NewInjector wraps a plan for element type T.
func NewInjector[T Float](plan *Plan) *Injector[T] { return fault.NewInjector[T](plan) }
