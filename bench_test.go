// Benchmarks regenerating the timing-shaped view of every table and figure
// in the paper's evaluation (Section 5), plus the ablation benches of
// DESIGN.md. Each BenchmarkFigN corresponds to the campaign driver of the
// same figure (cmd/abftcampaign regenerates the full statistical view);
// testing.B controls repetition here, so a single b.N iteration is one
// complete experiment unit (a full protected run).
//
// Benchmark sizes default to the paper's small tile (64x64x8) with reduced
// iteration counts so `go test -bench=.` completes on a laptop; the
// reported per-op times are what EXPERIMENTS.md compares across methods.
package stencilabft_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"stencilabft/internal/campaign"
	"stencilabft/internal/checksum"
	"stencilabft/internal/core"
	"stencilabft/internal/dist"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/num"
	"stencilabft/internal/resilience"
	"stencilabft/internal/serve"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// benchConfig is the tile the benches run: the paper's small configuration
// with a shortened iteration count.
func benchConfig() campaign.TileConfig {
	return campaign.TileConfig{
		Nx: 64, Ny: 64, Nz: 8,
		Iterations: 32,
		Reps:       1,
		Epsilon:    1e-5,
		Period:     16,
		Seed:       1,
		Workers:    1, // deterministic single-worker timing; A4 varies this
	}
}

func newBenchRunner(b *testing.B) *campaign.Runner {
	b.Helper()
	r, err := campaign.NewRunner(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable1 runs one repetition of the Table-1 configuration under
// each method, the cost unit every figure below is built from.
func BenchmarkTable1(b *testing.B) {
	r := newBenchRunner(b)
	for _, m := range []campaign.Method{campaign.NoABFT, campaign.Online, campaign.Offline} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Run(m, nil)
			}
		})
	}
}

// BenchmarkFig8 times the method x scenario matrix of Figure 8: mean
// execution time, error-free versus a single random bit-flip.
func BenchmarkFig8(b *testing.B) {
	r := newBenchRunner(b)
	for _, m := range []campaign.Method{campaign.NoABFT, campaign.Online, campaign.Offline} {
		b.Run(m.String()+"/error-free", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Run(m, nil)
			}
		})
		b.Run(m.String()+"/bit-flip", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Run(m, r.RandomPlan(i))
			}
		})
	}
}

// BenchmarkFig9 measures the accuracy experiment's cost: a protected run
// plus the l2-error evaluation against the reference (the arithmetic-error
// bars of Figure 9 are statistics over exactly this unit).
func BenchmarkFig9(b *testing.B) {
	r := newBenchRunner(b)
	for _, m := range []campaign.Method{campaign.Online, campaign.Offline} {
		b.Run(m.String(), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				res := r.Run(m, r.RandomPlan(i))
				sink += res.L2
			}
			_ = sink
		})
	}
}

// BenchmarkFig10 times fixed-bit injection runs at the three probe bits the
// figure's regions are defined by: a low fraction bit (undetectable), a
// high exponent bit (always detected) and the sign bit.
func BenchmarkFig10(b *testing.B) {
	r := newBenchRunner(b)
	for _, bit := range []int{4, 30, 31} {
		for _, m := range []campaign.Method{campaign.Online, campaign.OnlinePaperEq10, campaign.Offline} {
			b.Run(fmt.Sprintf("bit%02d/%s", bit, m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r.Run(m, r.FixedBitPlan(bit, i))
				}
			})
		}
	}
}

// BenchmarkFig11 times the offline method across the detection-period sweep
// of Figure 11, error-free and with one injected bit-flip.
func BenchmarkFig11(b *testing.B) {
	for _, period := range []int{1, 4, 16, 64} {
		cfg := benchConfig()
		cfg.Period = period
		r, err := campaign.NewRunner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("period%03d/error-free", period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Run(campaign.Offline, nil)
			}
		})
		b.Run(fmt.Sprintf("period%03d/bit-flip", period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Run(campaign.Offline, r.RandomPlan(i))
			}
		})
	}
}

// --- Ablation benches (DESIGN.md A1-A4) ---

// BenchmarkAblationBoundaryTerms (A1) compares the checksum interpolation
// cost with exact alpha/beta, with the terms dropped (the paper's
// listings), and under periodic boundaries where they vanish by algebra.
func BenchmarkAblationBoundaryTerms(b *testing.B) {
	const nx, ny = 512, 512
	rng := rand.New(rand.NewSource(1))
	src := grid.New[float64](nx, ny)
	src.FillFunc(func(x, y int) float64 { return rng.Float64() })
	prev := checksum.NewVectors[float64](nx, ny)
	prev.Compute(src)
	out := make([]float64, ny)

	cases := []struct {
		name string
		bc   grid.Boundary
		drop bool
	}{
		{"clamp-exact", grid.Clamp, false},
		{"clamp-dropped", grid.Clamp, true},
		{"periodic", grid.Periodic, false},
	}
	for _, c := range cases {
		op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: c.bc}
		ip, err := checksum.NewInterp2D(op, nx, ny)
		if err != nil {
			b.Fatal(err)
		}
		ip.DropBoundaryTerms = c.drop
		edges := checksum.LiveEdges(src, c.bc, 0)
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ip.InterpolateB(prev.B, edges, out)
			}
		})
	}
}

// BenchmarkAblationFusedChecksum (A2) compares a plain sweep, the fused
// sweep (checksum accumulated inside the kernel loop, the paper's Figure 2)
// and a sweep followed by a separate checksum pass.
func BenchmarkAblationFusedChecksum(b *testing.B) {
	const nx, ny = 512, 512
	op := &stencil.Op2D[float32]{St: stencil.Laplace5[float32](0.2), BC: grid.Clamp}
	src := grid.New[float32](nx, ny)
	src.FillFunc(func(x, y int) float32 { return float32(x^y) * 0.01 })
	dst := grid.New[float32](nx, ny)
	bsum := make([]float32, ny)

	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op.Sweep(dst, src)
		}
	})
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op.SweepFused(dst, src, bsum)
		}
	})
	b.Run("separate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op.Sweep(dst, src)
			stencil.ChecksumB(dst, bsum)
		}
	})
}

// BenchmarkAblationKahan (A3) compares plain and compensated checksum
// accumulation over a full grid.
func BenchmarkAblationKahan(b *testing.B) {
	const nx, ny = 512, 512
	g := grid.New[float32](nx, ny)
	g.FillFunc(func(x, y int) float32 { return float32(x*31+y) * 0.001 })
	v := checksum.NewVectors[float32](nx, ny)

	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.Compute(g)
		}
	})
	b.Run("kahan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.ComputeKahan(g)
		}
	})
}

// BenchmarkAblationParallelSweep (A4) measures the row-partitioned parallel
// sweep at increasing worker counts. On a single-core machine the times
// should stay flat (the decomposition itself is nearly free); on multicore
// machines they fall with the worker count.
func BenchmarkAblationParallelSweep(b *testing.B) {
	const nx, ny = 1024, 1024
	op := &stencil.Op2D[float32]{St: stencil.Laplace5[float32](0.2), BC: grid.Clamp}
	src := grid.New[float32](nx, ny)
	src.FillFunc(func(x, y int) float32 { return float32(x + y) })
	dst := grid.New[float32](nx, ny)
	bsum := make([]float32, ny)

	for _, workers := range []int{1, 2, 4, 8} {
		pool := &stencil.Pool{Workers: workers}
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op.SweepParallel(pool, dst, src, bsum)
			}
		})
		pool.Close()
	}
}

// BenchmarkAblationMultiError (A5) times the detection+correction slow path
// under a two-error iteration, isolating the cost the online protector pays
// only when something is actually wrong.
func BenchmarkAblationMultiError(b *testing.B) {
	const nx, ny = 256, 256
	op := &stencil.Op2D[float32]{St: stencil.Laplace5[float32](0.2), BC: grid.Clamp}
	init := grid.New[float32](nx, ny)
	init.FillFunc(func(x, y int) float32 { return 300 })
	plan := fault.NewPlan(
		fault.Injection{Iteration: 0, X: 10, Y: 20, Bit: 30},
		fault.Injection{Iteration: 0, X: 200, Y: 100, Bit: 29},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.NewOnline2D(op, init, core.Options[float32]{})
		if err != nil {
			b.Fatal(err)
		}
		injector := fault.NewInjector[float32](plan)
		p.StepInject(injector.HookFor(0))
		if p.Stats().CorrectedPoints != 2 {
			b.Fatalf("expected 2 corrections, got %+v", p.Stats())
		}
	}
}

// BenchmarkAblationConeRecovery (A6) compares offline recovery costs: a
// full rollback-and-recompute versus the light-cone recomputation, for an
// interior error on a large domain with a short detection period. The cone
// sweeps O(Δ·(rΔ)²) points instead of O(Δ·nx·ny).
func BenchmarkAblationConeRecovery(b *testing.B) {
	const n, iters, period = 256, 16, 8
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := grid.New[float64](n, n)
	init.FillFunc(func(x, y int) float64 { return 300 + float64((x*31+y)%17) })
	inj := fault.Injection{Iteration: 3, X: n / 2, Y: n / 2, Bit: 58}

	for _, mode := range []struct {
		name string
		rec  core.RecoveryMode
	}{{"full-rollback", core.FullRollback}, {"cone", core.ConeRecovery}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := core.Options[float64]{
					Period:   period,
					Recovery: mode.rec,
					Detector: checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
				}
				p, err := core.NewOffline2D(op, init, opt)
				if err != nil {
					b.Fatal(err)
				}
				injector := fault.NewInjector[float64](fault.NewPlan(inj))
				for it := 0; it < iters; it++ {
					p.StepInject(injector.HookFor(it))
				}
				p.Finalize()
				st := p.Stats()
				if st.Detections == 0 {
					b.Fatal("injection not detected")
				}
				if mode.rec == core.ConeRecovery && st.ConeRecoveries == 0 {
					b.Fatal("cone recovery did not engage")
				}
			}
		})
	}
}

// BenchmarkDistCluster measures the rank-decomposed deployment end to end:
// per-rank ABFT with halo exchange, at increasing rank counts.
func BenchmarkDistCluster(b *testing.B) {
	const n, iters = 192, 8
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	init := grid.New[float64](n, n)
	init.FillFunc(func(x, y int) float64 { return 100 + float64(x+y) })
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := dist.NewCluster(op, init, ranks, dist.Options[float64]{
					Detector: checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				c.Run(iters)
				if c.Stats().Detections != 0 {
					b.Fatal("false positive in bench")
				}
			}
		})
	}
}

// BenchmarkCluster compares the decomposition topologies at a fixed rank
// count: 1-D row bands (4x1) against the 2-D Cartesian grid (2x2), at the
// perf-trajectory domain edges. The work per rank is identical (same
// points, same per-rank ABFT); what differs is the halo surface — bands
// exchange 2 full-width rows per interior seam, the grid exchanges shorter
// rows plus packed columns — so this measures the surface-to-volume
// economics of the topology, the scaling argument behind 2-D/3-D
// decompositions. BENCH_pr4.json records the trajectory point.
func BenchmarkCluster(b *testing.B) {
	const iters = 4
	for _, n := range []int{512, 1024} {
		init := grid.New[float64](n, n)
		init.FillFunc(func(x, y int) float64 { return 100 + float64((x*31+y*17)%23) })
		op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
		for _, topo := range []struct {
			name   string
			rx, ry int
		}{
			{"bands4x1", 1, 4},
			{"grid2x2", 2, 2},
		} {
			b.Run(fmt.Sprintf("n%d/%s", n, topo.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					c, err := dist.NewClusterGrid(op, init, topo.rx, topo.ry, dist.Options[float64]{
						Detector: checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
					})
					if err != nil {
						b.Fatal(err)
					}
					c.Run(iters)
					if c.Stats().Detections != 0 {
						b.Fatal("false positive in bench")
					}
					c.Close()
				}
			})
		}
	}
}

// BenchmarkClusterOverlap measures the steady-state per-iteration cost of
// the overlapped rank step: the cluster is constructed once (persistent
// rank goroutines, plan caches, pack buffers all warm), then Run(1) is
// timed on its own — isolating the compute/communication overlap from the
// construction cost that dominates BenchmarkCluster. The k axis is the
// depth-k ghost-zone trade: k > 1 amortises a halo exchange and barrier
// over k iterations at the price of redundantly recomputed boundary
// shells. Steady state must also be allocation-free.
func BenchmarkClusterOverlap(b *testing.B) {
	for _, n := range []int{512, 1024} {
		init := grid.New[float64](n, n)
		init.FillFunc(func(x, y int) float64 { return 100 + float64((x*31+y*17)%23) })
		op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
		for _, topo := range []struct {
			name   string
			rx, ry int
		}{
			{"bands4x1", 1, 4},
			{"grid2x2", 2, 2},
		} {
			for _, k := range []int{1, 2, 4} {
				b.Run(fmt.Sprintf("n%d/%s/k%d", n, topo.name, k), func(b *testing.B) {
					c, err := dist.NewClusterGrid(op, init, topo.rx, topo.ry, dist.Options[float64]{
						Detector:  checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
						HaloDepth: k,
					})
					if err != nil {
						b.Fatal(err)
					}
					defer c.Close()
					c.Run(2 * k) // warm-up: full exchange cycles
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c.Run(1)
					}
					b.StopTimer()
					if c.Stats().Detections != 0 {
						b.Fatal("false positive in bench")
					}
				})
			}
		}
	}
}

// benchSweepKernels compares the generic k-point sweep loop against the
// specialized kernels (star5, box9, star7) the plan dispatcher selects —
// the microscopic view of the kernel-specialization win. ForceGeneric pins
// the baseline to the dynamic loop on the same operator shape; the "fast"
// variants go through normal dispatch. Results are bit-identical either way
// (the pin tests in internal/stencil assert it), so this measures pure
// instruction-selection gain.
func benchSweepKernels[T num.Float](b *testing.B) {
	for _, n := range []int{64, 512, 1024} {
		kernels := []struct {
			name string
			st   *stencil.Stencil[T]
		}{
			{"star5", stencil.Laplace5[T](0.2)},
			{"box9", stencil.BoxBlur[T]()},
		}
		for _, k := range kernels {
			src := grid.New[T](n, n)
			src.FillFunc(func(x, y int) T { return T(x^y) * 0.01 })
			dst := grid.New[T](n, n)
			bsum := make([]T, n)
			for _, mode := range []struct {
				name  string
				force bool
			}{{"generic", true}, {"fast", false}} {
				op := &stencil.Op2D[T]{St: k.st, BC: grid.Clamp, ForceGeneric: mode.force}
				b.Run(fmt.Sprintf("%s/n%d/%s", k.name, n, mode.name), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						op.SweepFused(dst, src, bsum)
					}
				})
			}
		}
	}
	// The 3-D star at the paper's tile depth; n is the layer edge.
	for _, n := range []int{64, 192} {
		const nz = 8
		st := stencil.SevenPoint3D[T](0.4, 0.1, 0.1, 0.1, 0.1, 0.05, 0.15)
		src := grid.New3D[T](n, n, nz)
		src.FillFunc(func(x, y, z int) T { return T(x^y^z) * 0.01 })
		dst := grid.New3D[T](n, n, nz)
		for _, mode := range []struct {
			name  string
			force bool
		}{{"generic", true}, {"fast", false}} {
			op := &stencil.Op3D[T]{St: st, BC: grid.Clamp, ForceGeneric: mode.force}
			b.Run(fmt.Sprintf("star7/n%dx%d/%s", n, nz, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					op.Sweep(dst, src)
				}
			})
		}
	}
}

// BenchmarkSweepKernels is the generic-vs-specialized kernel matrix for
// float32 and float64 — the first point of the recorded perf trajectory
// (BENCH_pr3.json; the CI bench step regenerates it as an artifact).
func BenchmarkSweepKernels(b *testing.B) {
	b.Run("float32", func(b *testing.B) { benchSweepKernels[float32](b) })
	b.Run("float64", func(b *testing.B) { benchSweepKernels[float64](b) })
}

// BenchmarkOnlineStep2D isolates the per-iteration cost of the online
// protector against the unprotected sweep at the paper's two tile edges —
// the microscopic view of the <8% overhead claim.
func BenchmarkOnlineStep2D(b *testing.B) {
	for _, n := range []int{64, 512} {
		op := &stencil.Op2D[float32]{St: stencil.Laplace5[float32](0.2), BC: grid.Clamp}
		init := grid.New[float32](n, n)
		init.FillFunc(func(x, y int) float32 { return 300 })
		b.Run(fmt.Sprintf("n%d/none", n), func(b *testing.B) {
			p, err := core.NewNone2D(op, init, core.Options[float32]{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Step()
			}
		})
		b.Run(fmt.Sprintf("n%d/online", n), func(b *testing.B) {
			p, err := core.NewOnline2D(op, init, core.Options[float32]{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Step()
			}
		})
	}
}

// BenchmarkClusterTelemetry runs the same 2x2 clustered workload with
// telemetry off (nil collector: the hot path pays only nil checks), with
// phase counters plus the span recorder, and with counters only (span ring
// disabled). The off/counters gap is the acceptance number for PR 6: the
// instrumentation must stay within 2% of the uninstrumented run
// (BENCH_pr6.json records the measured point). ReportAllocs pins the
// disabled case's zero-allocation claim at cluster scope.
func BenchmarkClusterTelemetry(b *testing.B) {
	const n, iters = 512, 4
	init := grid.New[float64](n, n)
	init.FillFunc(func(x, y int) float64 { return 100 + float64((x*31+y*17)%23) })
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	for _, mode := range []struct {
		name string
		tel  func() *telemetry.Collector
	}{
		{"off", func() *telemetry.Collector { return nil }},
		{"on", func() *telemetry.Collector { return telemetry.New(0) }},
		{"counters-only", func() *telemetry.Collector { return telemetry.New(-1) }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := dist.NewClusterGrid(op, init, 2, 2, dist.Options[float64]{
					Detector:  checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
					Telemetry: mode.tel(),
				})
				if err != nil {
					b.Fatal(err)
				}
				c.Run(iters)
				if c.Stats().Detections != 0 {
					b.Fatal("false positive in bench")
				}
			}
		})
	}
}

// BenchmarkClusterBuddy runs the same 2x2 clustered workload with buddy
// checkpointing off and at the default drill period j=16 — every rank
// packs its restartable state straight into its bank slot and mirrors it
// across a halo edge once per period, overlapped with the barrier wait.
// One op is a 96-iteration segment (6 checkpoint rounds) of a long-lived
// cluster, so the number is the steady-state marginal cost — banks warm,
// construction excluded — matching how a resilient run actually amortises.
// The off/j16 gap is the acceptance number for PR 7: the resilience tax
// must stay within 10% of the unprotected cluster (BENCH_pr7.json records
// the measured point).
func BenchmarkClusterBuddy(b *testing.B) {
	const n, iters, period = 512, 96, 16
	init := grid.New[float64](n, n)
	init.FillFunc(func(x, y int) float64 { return 100 + float64((x*31+y*17)%23) })
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	for _, mode := range []struct {
		name   string
		period int
	}{
		{"off", 0},
		{"j16", period},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := dist.Options[float64]{
				Detector: checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
			}
			var buddy *resilience.Buddy[float64]
			if mode.period > 0 {
				buddy = resilience.NewBuddy[float64](mode.period, nil)
				opt.AfterStep = buddy.AfterStep
			}
			c, err := dist.NewClusterGrid(op, init, 2, 2, opt)
			if err != nil {
				b.Fatal(err)
			}
			if buddy != nil {
				if err := buddy.Attach(c); err != nil {
					b.Fatal(err)
				}
			}
			c.Run(iters) // warm-up segment: banks allocated, pages faulted
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Run(iters)
			}
			b.StopTimer()
			if c.Stats().Detections != 0 {
				b.Fatal("false positive in bench")
			}
			if buddy != nil && buddy.Stats().Saves == 0 {
				b.Fatal("no checkpoint round ran in bench")
			}
		})
	}
}

// BenchmarkClusterCRC prices the v2 checksummed wire (PR 8): every tcp
// frame now carries a CRC-32C over header and payload plus a per-edge
// sequence number — the integrity layer the chaos harness drills. The
// wire/roundtrip case isolates the framing itself (seal + parse + CRC
// verify of one halo-sized frame, throughput reported); the cluster cases
// run the same 2x2 workload on the chan backend (no frames at all) and on
// the tcp backend over in-process loopback, so the gap bounds the whole
// socket+framing tax and the recorded point (BENCH_pr8.json) tracks it
// across PRs. Fault-free steady state: no reconnects, no resends — the
// healing machinery must cost nothing until a fault engages it.
func BenchmarkClusterCRC(b *testing.B) {
	b.Run("wire/roundtrip", func(b *testing.B) {
		payload := make([]byte, 256*8) // one 256-column float64 halo strip
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		var buf bytes.Buffer
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := dist.WriteWireFrame(&buf, dist.WireFrame{Kind: dist.FrameState, Gen: uint32(i), Elem: 8, Payload: payload}); err != nil {
				b.Fatal(err)
			}
			if _, err := dist.ReadWireFrame(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})

	const n, iters = 512, 8
	init := grid.New[float64](n, n)
	init.FillFunc(func(x, y int) float64 { return 100 + float64((x*31+y*17)%23) })
	op := &stencil.Op2D[float64]{St: stencil.Laplace5(0.2), BC: grid.Clamp}
	for _, backend := range []struct {
		name string
		tcp  bool
	}{
		{"chan2x2", false},
		{"tcp2x2", true},
	} {
		b.Run(backend.name, func(b *testing.B) {
			opt := dist.Options[float64]{
				Detector: checksum.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
			}
			if backend.tcp {
				opt.NewTransport = func(rx, ry int, ring bool) dist.Transport[float64] {
					tr, err := dist.NewTCPTransport[float64](dist.TCPConfig{RanksX: rx, RanksY: ry, Ring: ring})
					if err != nil {
						b.Fatal(err)
					}
					return tr
				}
			}
			c, err := dist.NewClusterGrid(op, init, 2, 2, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			c.Run(iters) // warm-up segment: connections dialed, pages faulted
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Run(iters)
			}
			b.StopTimer()
			if c.Stats().Detections != 0 {
				b.Fatal("false positive in bench")
			}
		})
	}
}

// BenchmarkServeThroughput drives the full stencilserve path end to end —
// HTTP POST, scheduler queue, worker protocol, SSE completion — one job per
// op, each with a distinct generator seed so none hit the result cache.
// ns/op is the service's per-job latency under concurrent submitters; the
// inverse is jobs/sec.
func BenchmarkServeThroughput(b *testing.B) {
	srv, err := serve.New(serve.Config{Workers: 4, QuotaPerTenant: 256, QueueDepth: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := fmt.Sprintf(`{"spec":{"stencil":{"name":"laplace5"},"bc":"clamp","scheme":"online",`+
				`"grid":{"nx":32,"ny":24,"generator":"uniform","seed":%d}},"iters":4}`, seed.Add(1))
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var st struct {
				ID    string `json:"id"`
				State string `json:"state"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b.Fatalf("POST: status %d (%+v)", resp.StatusCode, st)
			}
			// The SSE stream ends when the job settles — no polling.
			ev, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
			if err != nil {
				b.Fatal(err)
			}
			terminal := ""
			sc := bufio.NewScanner(ev.Body)
			for sc.Scan() {
				if line, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
					terminal = line
				}
			}
			ev.Body.Close()
			if terminal != "done" {
				b.Fatalf("job %s ended with %q", st.ID, terminal)
			}
		}
	})
}
