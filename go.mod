module stencilabft

go 1.24
