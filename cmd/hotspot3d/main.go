// Command hotspot3d runs the HotSpot3D thermal simulation (the paper's
// evaluation application) under a selectable protection method, mirroring
// the shape of Rodinia's hotspot3D CLI.
//
// Usage:
//
//	hotspot3d -nx 64 -ny 64 -nz 8 -iters 128 -abft online
//	hotspot3d -abft offline -period 16 -inject -bit 30
//
// With -inject, a single bit-flip is injected at a random iteration, point
// and (unless -bit is given) bit position, and the run reports whether it
// was detected and what arithmetic error remains versus an error-free
// reference run.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	abft "stencilabft"
	"stencilabft/internal/fault"
	"stencilabft/internal/hotspot"
	"stencilabft/internal/metrics"
	"stencilabft/internal/stencil"
)

func main() {
	var (
		nx    = flag.Int("nx", 64, "tile width")
		ny    = flag.Int("ny", 64, "tile height")
		nz    = flag.Int("nz", 8, "layers")
		iters = flag.Int("iters", 128, "stencil iterations")
		mode  = flag.String("abft", "online", "protection: none|online|offline")

		period    = flag.Int("period", 16, "offline detection/checkpoint period")
		epsilon   = flag.Float64("epsilon", 1e-5, "detection threshold")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 42, "input and fault seed")
		inject    = flag.Bool("inject", false, "inject a single random bit-flip")
		bit       = flag.Int("bit", -1, "fix the injected bit position (-1 = random)")
		powerFile = flag.String("power", "", "Rodinia-format power file (empty = synthetic)")
		tempFile  = flag.String("temp", "", "Rodinia-format initial temperature file (empty = synthetic)")
		outFile   = flag.String("out", "", "write the final temperature field here (Rodinia format)")
	)
	flag.Parse()

	cfg := hotspot.Config{Nx: *nx, Ny: *ny, Nz: *nz}
	model, err := hotspot.NewModel[float32](cfg)
	if err != nil {
		fail(err)
	}
	power := hotspot.SyntheticPower[float32](cfg, *seed)
	if *powerFile != "" {
		if power, err = hotspot.ReadGridFile[float32](*powerFile, *nx, *ny, *nz); err != nil {
			fail(err)
		}
	}
	init := hotspot.SyntheticTemperature[float32](cfg, *seed+1)
	if *tempFile != "" {
		if init, err = hotspot.ReadGridFile[float32](*tempFile, *nx, *ny, *nz); err != nil {
			fail(err)
		}
	}
	op := model.Op(power)

	scheme, err := abft.ParseScheme(*mode)
	if err != nil {
		fail(err)
	}
	var pool *stencil.Pool
	if *workers != 0 {
		pool = &stencil.Pool{Workers: *workers}
	} else {
		pool = stencil.NewPool()
	}

	// The injector goes in through the pluggable InjectSource seam (rather
	// than a declarative plan) so the run can report whether the planned
	// flip actually landed.
	var plan *fault.Plan
	if *inject {
		rng := rand.New(rand.NewSource(*seed + 2))
		var inj fault.Injection
		if *bit >= 0 {
			inj = fault.FixedBit(rng, *iters, *nx, *ny, *nz, *bit)
		} else {
			inj = fault.RandomSingle(rng, *iters, *nx, *ny, *nz, 32)
		}
		plan = fault.NewPlan(inj)
		fmt.Printf("injection: %v\n", inj)
	}
	injector := abft.NewInjector[float32](plan)

	// Error-free reference for the arithmetic-error report.
	ref, err := abft.Build(abft.Spec[float32]{Op3D: op, Init3D: init})
	if err != nil {
		fail(err)
	}
	ref.Run(*iters)

	timer := metrics.StartTimer()
	p, err := abft.Build(abft.Spec[float32]{
		Scheme:       scheme,
		Op3D:         op,
		Init3D:       init,
		Detector:     abft.Detector[float32]{Epsilon: float32(*epsilon), AbsFloor: 1},
		Pool:         pool,
		Period:       *period,
		InjectSource: injector,
	})
	if err != nil {
		fail(err)
	}
	p.Run(*iters)
	p.Finalize()
	stats := p.Stats()
	l2 := metrics.L2Error3D(p.Grid3D(), ref.Grid3D())
	final := p.Grid3D()
	elapsed := timer.Seconds()

	fmt.Printf("hotspot3d %dx%dx%d, %d iterations, abft=%s, dt=%.3gs/step\n",
		*nx, *ny, *nz, *iters, scheme, model.DT())
	fmt.Printf("wall time:        %.4fs\n", elapsed)
	fmt.Printf("arithmetic error: %.6g (l2 vs error-free reference)\n", l2)
	fmt.Printf("protector stats:  %v\n", stats)
	if plan != nil && len(injector.Hits()) == 0 {
		fmt.Println("note: the planned injection did not land (out-of-range target)")
	}
	if *outFile != "" {
		if err := hotspot.WriteGridFile(*outFile, final); err != nil {
			fail(err)
		}
		fmt.Printf("final temperature field written to %s\n", *outFile)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hotspot3d:", err)
	os.Exit(1)
}
