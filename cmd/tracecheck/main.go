// Command tracecheck validates a Chrome trace-event file written by
// stencilrun -trace: the file must parse, carry the expected number of
// rank lanes, and contain named phase spans. It prints a one-line summary
// and exits non-zero on any miss — the CI multiprocess job gates on it.
//
// Usage:
//
//	tracecheck -lanes 4 trace.json
//	tracecheck -lanes 4 -phases sweep,verify,barrier-wait trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stencilabft/internal/telemetry"
)

func main() {
	lanes := flag.Int("lanes", 0, "required number of rank lanes (0 accepts any non-zero count)")
	phases := flag.String("phases", "", "comma-separated phase names that must each appear as a span")
	flag.Parse()
	if flag.NArg() != 1 {
		fail(fmt.Errorf("usage: tracecheck [-lanes N] [-phases a,b,c] trace.json"))
	}
	if err := check(flag.Arg(0), *lanes, *phases); err != nil {
		fail(err)
	}
}

func check(path string, wantLanes int, wantPhases string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tf, err := telemetry.ParseTrace(f)
	if err != nil {
		return err
	}

	gotLanes := tf.RankLanes()
	switch {
	case wantLanes > 0 && len(gotLanes) != wantLanes:
		return fmt.Errorf("%s: %d rank lanes %v, want %d", path, len(gotLanes), gotLanes, wantLanes)
	case wantLanes == 0 && len(gotLanes) == 0:
		return fmt.Errorf("%s: no rank lane carries any span", path)
	}

	gotPhases := tf.PhaseNames()
	if wantPhases != "" {
		have := map[string]bool{}
		for _, n := range gotPhases {
			have[n] = true
		}
		for _, want := range strings.Split(wantPhases, ",") {
			want = strings.TrimSpace(want)
			if want != "" && !have[want] {
				return fmt.Errorf("%s: no %q span (phases present: %s)", path, want, strings.Join(gotPhases, ","))
			}
		}
	}

	spans := 0
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	fmt.Printf("tracecheck: %s ok — %d spans across %d rank lanes %v, phases %s\n",
		path, spans, len(gotLanes), gotLanes, strings.Join(gotPhases, ","))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
