// Command stencilrun applies a named 2-D stencil kernel to a synthetic
// domain under a selectable protection method — a debugging and
// demonstration tool for the library's 2-D path. Every configuration routes
// through the unified Spec/Build factory, so the flags map one-to-one onto
// Spec fields.
//
// Usage:
//
//	stencilrun -kernel laplace -nx 256 -ny 256 -iters 100 -abft online
//	stencilrun -kernel advect -bc constant -bcvalue 25 -inject
//	stencilrun -abft blocked -blocksize 64
//	stencilrun -ranks 4 -inject
//	stencilrun -rankgrid 2x3 -inject
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	abft "stencilabft"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/metrics"
	"stencilabft/internal/stencil"
)

// parseRankGrid parses the -rankgrid value "RxC" (R rank rows splitting the
// domain's y axis by C rank columns splitting x) into its two factors.
func parseRankGrid(s string) (rows, cols int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) == 2 {
		rows, errR := strconv.Atoi(parts[0])
		cols, errC := strconv.Atoi(parts[1])
		if errR == nil && errC == nil {
			return rows, cols, nil
		}
	}
	return 0, 0, fmt.Errorf("invalid -rankgrid %q (want RxC, e.g. 2x3 for 2 rank rows by 3 rank columns)", s)
}

func kernelByName(name string) (*stencil.Stencil[float32], error) {
	switch name {
	case "laplace":
		return stencil.Laplace5[float32](0.2), nil
	case "jacobi4":
		return stencil.Jacobi4[float32](), nil
	case "blur":
		return stencil.BoxBlur[float32](), nil
	case "advect":
		return stencil.Advect2D[float32](0.3, 0.2), nil
	default:
		return nil, fmt.Errorf("unknown kernel %q (want laplace|jacobi4|blur|advect)", name)
	}
}

func boundaryByName(name string) (grid.Boundary, error) {
	switch name {
	case "clamp":
		return grid.Clamp, nil
	case "periodic":
		return grid.Periodic, nil
	case "mirror":
		return grid.Mirror, nil
	case "constant":
		return grid.Constant, nil
	case "zero":
		return grid.Zero, nil
	default:
		return 0, fmt.Errorf("unknown boundary %q (want clamp|periodic|mirror|constant|zero)", name)
	}
}

func main() {
	var (
		nx      = flag.Int("nx", 256, "domain width")
		ny      = flag.Int("ny", 256, "domain height")
		iters   = flag.Int("iters", 100, "iterations")
		kernel  = flag.String("kernel", "laplace", "laplace|jacobi4|blur|advect")
		bcName  = flag.String("bc", "clamp", "clamp|periodic|mirror|constant|zero")
		bcValue = flag.Float64("bcvalue", 0, "ghost value for -bc constant")
		mode    = flag.String("abft", "online", "none|online|offline|blocked")
		period  = flag.Int("period", 16, "offline detection period")
		epsilon = flag.Float64("epsilon", 1e-5, "detection threshold")
		inject  = flag.Bool("inject", false, "inject a single random bit-flip")
		seed    = flag.Int64("seed", 1, "seed")
		blockSz = flag.Int("blocksize", 0, "tile edge for -abft blocked (with -abft online, implies blocked)")
		ranks   = flag.Int("ranks", 0, "decompose over N simulated rank row-bands: alias for -rankgrid Nx1 (cluster deployment, online scheme)")
		rgrid   = flag.String("rankgrid", "", "decompose over an RxC Cartesian rank grid, e.g. 2x3 (cluster deployment, online scheme)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the protected run to this file (go tool pprof)")
		memProf = flag.String("memprofile", "", "write a heap profile taken after the protected run to this file")
	)
	flag.Parse()

	st, err := kernelByName(*kernel)
	if err != nil {
		fail(err)
	}
	bc, err := boundaryByName(*bcName)
	if err != nil {
		fail(err)
	}
	op := &abft.Op2D[float32]{St: st, BC: bc, BCValue: float32(*bcValue)}

	rng := rand.New(rand.NewSource(*seed))
	init := abft.New[float32](*nx, *ny)
	init.FillFunc(func(x, y int) float32 { return 100 + 50*rng.Float32() })

	var plan *fault.Plan
	if *inject {
		inj := fault.RandomSingle(rng, *iters, *nx, *ny, 1, 32)
		plan = fault.NewPlan(inj)
		fmt.Printf("injection: %v\n", inj)
	}

	scheme, err := abft.ParseScheme(*mode)
	if err != nil {
		fail(err)
	}
	if *blockSz > 0 {
		switch scheme {
		case abft.Online:
			scheme = abft.Blocked // historical shorthand: -blocksize alone selects tiling
		case abft.Blocked:
		default:
			fail(fmt.Errorf("-blocksize applies to the blocked scheme only (got -abft %s)", scheme))
		}
	}
	deployment := abft.Local
	var ranksX, ranksY int
	switch {
	case *rgrid != "" && *ranks > 0:
		fail(fmt.Errorf("-ranks is the Nx1 shorthand for -rankgrid; set one of them, not both"))
	case *rgrid != "":
		rows, cols, err := parseRankGrid(*rgrid)
		if err != nil {
			fail(err)
		}
		ranksX, ranksY = cols, rows
		deployment = abft.Clustered
	case *ranks > 0:
		ranksX, ranksY = 1, *ranks
		deployment = abft.Clustered
	}

	// Error-free reference for the arithmetic-error report.
	ref, err := abft.Build(abft.Spec[float32]{Op2D: op, Init: init})
	if err != nil {
		fail(err)
	}
	ref.Run(*iters)

	spec := abft.Spec[float32]{
		Scheme:     scheme,
		Deployment: deployment,
		Op2D:       op,
		Init:       init,
		Detector:   abft.Detector[float32]{Epsilon: float32(*epsilon), AbsFloor: 1},
		Pool:       abft.NewPool(),
		RanksX:     ranksX,
		RanksY:     ranksY,
		Inject:     plan,
	}
	if scheme == abft.Offline {
		spec.Period = *period
	}
	if scheme == abft.Blocked {
		bs := *blockSz
		if bs <= 0 {
			bs = 64
		}
		spec.BlockX, spec.BlockY = bs, bs
	}

	// Profiling covers exactly the protected run (build through Finalize),
	// not the reference run above or the reporting below, so profiles
	// isolate the hot path under measurement. fail() flushes a started
	// profile before exiting so an error never leaves a truncated file.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	timer := metrics.StartTimer()
	p, err := abft.Build(spec)
	if err != nil {
		fail(err)
	}
	p.Run(*iters)
	p.Finalize()
	flushCPUProfile()
	stats := p.Stats()

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fail(err)
		}
		runtime.GC() // settle allocations so the heap profile shows live + cumulative cleanly
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		f.Close()
	}
	l2 := metrics.L2Error(p.Grid(), ref.Grid())

	fmt.Printf("stencilrun %s on %dx%d (%s boundaries), %d iterations, scheme=%s deployment=%s\n",
		st.Name, *nx, *ny, bc, *iters, scheme, deployment)
	fmt.Printf("wall time:        %.4fs\n", timer.Seconds())
	fmt.Printf("arithmetic error: %.6g\n", l2)
	fmt.Printf("protector stats:  %v\n", stats)
	if c, ok := p.(*abft.Cluster[float32]); ok {
		for i, s := range c.RankStats() {
			fmt.Printf("  rank %d tile %v: %v\n", i, c.Tile(i), s)
		}
	}
}

// stopCPUProfile is set while a CPU profile is being collected;
// flushCPUProfile runs it once (from the happy path or from fail).
var stopCPUProfile func()

func flushCPUProfile() {
	if stopCPUProfile != nil {
		stopCPUProfile()
		stopCPUProfile = nil
	}
}

func fail(err error) {
	flushCPUProfile()
	fmt.Fprintln(os.Stderr, "stencilrun:", err)
	os.Exit(1)
}
