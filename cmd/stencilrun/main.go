// Command stencilrun applies a named 2-D stencil kernel to a synthetic
// domain under a selectable protection method — a debugging and
// demonstration tool for the library's 2-D path.
//
// Usage:
//
//	stencilrun -kernel laplace -nx 256 -ny 256 -iters 100 -abft online
//	stencilrun -kernel advect -bc clamp -inject
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	abft "stencilabft"
	"stencilabft/internal/blocks"
	"stencilabft/internal/checksum"
	"stencilabft/internal/core"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/metrics"
	"stencilabft/internal/stencil"
)

func kernelByName(name string) (*stencil.Stencil[float32], error) {
	switch name {
	case "laplace":
		return stencil.Laplace5[float32](0.2), nil
	case "jacobi4":
		return stencil.Jacobi4[float32](), nil
	case "blur":
		return stencil.BoxBlur[float32](), nil
	case "advect":
		return stencil.Advect2D[float32](0.3, 0.2), nil
	default:
		return nil, fmt.Errorf("unknown kernel %q (want laplace|jacobi4|blur|advect)", name)
	}
}

func boundaryByName(name string) (grid.Boundary, error) {
	switch name {
	case "clamp":
		return grid.Clamp, nil
	case "periodic":
		return grid.Periodic, nil
	case "mirror":
		return grid.Mirror, nil
	case "zero":
		return grid.Zero, nil
	default:
		return 0, fmt.Errorf("unknown boundary %q (want clamp|periodic|mirror|zero)", name)
	}
}

func main() {
	var (
		nx      = flag.Int("nx", 256, "domain width")
		ny      = flag.Int("ny", 256, "domain height")
		iters   = flag.Int("iters", 100, "iterations")
		kernel  = flag.String("kernel", "laplace", "laplace|jacobi4|blur|advect")
		bcName  = flag.String("bc", "clamp", "clamp|periodic|mirror|zero")
		mode    = flag.String("abft", "online", "none|online|offline")
		period  = flag.Int("period", 16, "offline detection period")
		epsilon = flag.Float64("epsilon", 1e-5, "detection threshold")
		inject  = flag.Bool("inject", false, "inject a single random bit-flip")
		seed    = flag.Int64("seed", 1, "seed")
		blockSz = flag.Int("blocksize", 0, "apply ABFT per NxN chunk instead of the whole domain (online only)")
	)
	flag.Parse()

	st, err := kernelByName(*kernel)
	if err != nil {
		fail(err)
	}
	bc, err := boundaryByName(*bcName)
	if err != nil {
		fail(err)
	}
	op := &abft.Op2D[float32]{St: st, BC: bc}

	rng := rand.New(rand.NewSource(*seed))
	init := abft.New[float32](*nx, *ny)
	init.FillFunc(func(x, y int) float32 { return 100 + 50*rng.Float32() })

	var plan *fault.Plan
	if *inject {
		inj := fault.RandomSingle(rng, *iters, *nx, *ny, 1, 32)
		plan = fault.NewPlan(inj)
		fmt.Printf("injection: %v\n", inj)
	}
	injector := fault.NewInjector[float32](plan)

	ref, err := core.NewNone2D(op, init, core.Options[float32]{})
	if err != nil {
		fail(err)
	}
	ref.Run(*iters)

	opt := core.Options[float32]{
		Detector: checksum.Detector[float32]{Epsilon: float32(*epsilon), AbsFloor: 1},
		Period:   *period,
		Pool:     stencil.NewPool(),
	}
	timer := metrics.StartTimer()
	if *blockSz > 0 {
		runBlocked(op, init, *blockSz, opt, injector, *iters, ref.Grid(), timer)
		return
	}
	p, err := core.New2D(*mode, op, init, opt)
	if err != nil {
		fail(err)
	}
	for i := 0; i < *iters; i++ {
		p.Step(injector.HookFor(i))
	}
	if f, ok := p.(core.Finalizer); ok {
		f.Finalize()
	}
	stats := p.Stats()
	l2 := metrics.L2Error(p.Grid(), ref.Grid())

	fmt.Printf("stencilrun %s on %dx%d (%s boundaries), %d iterations, abft=%s\n",
		st.Name, *nx, *ny, bc, *iters, *mode)
	fmt.Printf("wall time:        %.4fs\n", timer.Seconds())
	fmt.Printf("arithmetic error: %.6g\n", l2)
	fmt.Printf("protector stats:  %v\n", stats)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stencilrun:", err)
	os.Exit(1)
}

// runBlocked executes the per-chunk deployment (paper Section 3.4): each
// blocksize x blocksize tile verifies and repairs independently.
func runBlocked(op *abft.Op2D[float32], init *abft.Grid[float32], bs int,
	opt core.Options[float32], injector *fault.Injector[float32], iters int,
	ref *abft.Grid[float32], timer metrics.Timer) {
	p, err := blocks.New(op, init, bs, bs, blocks.Options[float32]{
		Detector: opt.Detector,
		Pool:     opt.Pool,
	})
	if err != nil {
		fail(err)
	}
	for i := 0; i < iters; i++ {
		p.Step(injector.HookFor(i))
	}
	fmt.Printf("stencilrun blocked %dx%d chunks (%d blocks)\n", bs, bs, p.Blocks())
	fmt.Printf("wall time:        %.4fs\n", timer.Seconds())
	fmt.Printf("arithmetic error: %.6g\n", metrics.L2Error(p.Grid(), ref))
	fmt.Printf("blocked stats:    %+v\n", p.Stats())
}
