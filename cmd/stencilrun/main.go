// Command stencilrun applies a named 2-D stencil kernel to a synthetic
// domain under a selectable protection method — a debugging and
// demonstration tool for the library's 2-D path. Every configuration routes
// through the unified Spec/Build factory, so the flags map one-to-one onto
// Spec fields.
//
// Usage:
//
//	stencilrun -kernel laplace -nx 256 -ny 256 -iters 100 -abft online
//	stencilrun -kernel advect -bc constant -bcvalue 25 -inject
//	stencilrun -abft blocked -blocksize 64
//	stencilrun -ranks 4 -inject
//	stencilrun -rankgrid 2x3 -inject
//
// Multi-process clusters (the tcp transport): every rank is a real OS
// process. Either fork a whole cluster over loopback in one command:
//
//	stencilrun -launch 4 -rankgrid 2x2 -inject
//
// or start each rank process by hand (on one host or several), meeting at
// a rendezvous address served by rank 0's process:
//
//	stencilrun -rankgrid 2x2 -transport tcp -rank 0 -rendezvous host:9777 &
//	stencilrun -rankgrid 2x2 -transport tcp -rank 1 -rendezvous host:9777 &
//	...
//
// The -launch parent merges the children's stats and verifies the gathered
// grid is bit-identical to an in-process single-process reference run (or,
// with -inject, that the corruption was detected and repaired); it exits
// non-zero otherwise, which is what CI gates on.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	abft "stencilabft"
	"stencilabft/internal/dist"
	"stencilabft/internal/fault"
	"stencilabft/internal/grid"
	"stencilabft/internal/metrics"
	"stencilabft/internal/resilience"
	"stencilabft/internal/stencil"
)

// config holds the raw flag values; plan (via config.resolve) is the
// validated run description derived from them. Keeping resolve a pure
// function of config is what makes the flag-combination rules unit-testable.
type config struct {
	nx, ny, iters int
	kernel        string
	bcName        string
	bcValue       float64
	mode          string
	period        int
	epsilon       float64
	inject        bool
	seed          int64
	blockSize     int

	ranks     int
	rankGrid  string
	haloDepth int // exchange k-deep halos every k iterations (cluster deployments)

	transport  string // "" = auto: tcp when -rank/-rendezvous/-launch appear, else chan
	rank       int    // -1 = unset
	rendezvous string
	bind       string
	launch     int
	tileOut    string

	buddy    int    // buddy checkpoint period j for tcp clusters (0 = off)
	control  string // recovery coordinator address (tcp rank processes)
	recover  bool   // -launch parent: host a coordinator and respawn dead ranks
	epoch    int    // incarnation a tcp rank process joins at (> 0: respawned claimant)
	dieAt    int    // tcp rank process: kill own process after completing this iteration (fault drill)
	die      string // -launch parent: "R@I" routes -die-at I to child rank R (fault drill)
	ckptPath string // disk checkpoint base path (local and chan deployments)
	ckptEach int    // disk checkpoint interval (0 = one checkpoint at the end)
	restore  string // resume from the newest checkpoint under this base path
	ckptDir  string // shared per-rank checkpoint directory (tcp clusters; double-death fallback)

	chaos     string // chaos fault-plan file (cluster deployments)
	chaosSeed int64  // chaos injection seed
	soak      int    // repeat the whole run N times, advancing the chaos seed each pass

	cpuProf, memProf string

	trace       string // write a Chrome trace-event timeline to this file
	metricsAddr string // serve expvar, pprof and Prometheus text on this address
}

// plan is the resolved, validated run: which scheme runs where, over which
// rank grid, through which transport, and in which process role.
type plan struct {
	scheme         abft.Scheme
	deployment     abft.Deployment
	ranksX, ranksY int // 0x0 for local deployments
	transport      abft.TransportKind
	launch         bool // parent role: fork the cluster and merge
	dieRank        int  // -die target rank (meaningful when dieIter > 0)
	dieIter        int  // -die target iteration; 0 = no fault drill scheduled
}

// parseDie parses the -die value "R@I": kill rank R's process once it
// completes iteration I.
func parseDie(s string) (rank, iter int, err error) {
	r, i, ok := strings.Cut(s, "@")
	if ok {
		rank, errR := strconv.Atoi(r)
		iter, errI := strconv.Atoi(i)
		if errR == nil && errI == nil {
			return rank, iter, nil
		}
	}
	return 0, 0, fmt.Errorf("invalid -die %q (want R@I, e.g. 3@50: kill rank 3's process after iteration 50)", s)
}

// parseRankGrid parses the -rankgrid value "RxC" (R rank rows splitting the
// domain's y axis by C rank columns splitting x) into its two factors.
func parseRankGrid(s string) (rows, cols int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) == 2 {
		rows, errR := strconv.Atoi(parts[0])
		cols, errC := strconv.Atoi(parts[1])
		if errR == nil && errC == nil {
			return rows, cols, nil
		}
	}
	return 0, 0, fmt.Errorf("invalid -rankgrid %q (want RxC, e.g. 2x3 for 2 rank rows by 3 rank columns)", s)
}

// resolve validates the flag combination up front — every tcp/launch
// misconfiguration fails here with an actionable message, before any
// socket is opened or child process forked.
func (c config) resolve() (plan, error) {
	var p plan

	scheme, err := abft.ParseScheme(c.mode)
	if err != nil {
		return p, err
	}
	if c.blockSize > 0 {
		switch scheme {
		case abft.Online:
			scheme = abft.Blocked // historical shorthand: -blocksize alone selects tiling
		case abft.Blocked:
		default:
			return p, fmt.Errorf("-blocksize applies to the blocked scheme only (got -abft %s)", scheme)
		}
	}
	p.scheme = scheme

	// Rank-grid shape.
	p.deployment = abft.Local
	switch {
	case c.rankGrid != "" && c.ranks > 0:
		return p, fmt.Errorf("-ranks is the Nx1 shorthand for -rankgrid; set one of them, not both")
	case c.rankGrid != "":
		rows, cols, err := parseRankGrid(c.rankGrid)
		if err != nil {
			return p, err
		}
		p.ranksX, p.ranksY = cols, rows
		p.deployment = abft.Clustered
	case c.ranks > 0:
		p.ranksX, p.ranksY = 1, c.ranks
		p.deployment = abft.Clustered
	}

	// Depth-k ghost zones: a cluster-only communication-avoiding schedule.
	switch {
	case c.haloDepth < 1:
		return p, fmt.Errorf("-halodepth %d: the ghost-zone depth must be at least 1 (1 = exchange every iteration)", c.haloDepth)
	case c.haloDepth > 1 && p.deployment != abft.Clustered:
		return p, fmt.Errorf("-halodepth %d trades halo exchanges between ranks for redundant boundary recomputation; shape a cluster with -rankgrid RxC (or -ranks N)", c.haloDepth)
	}

	if c.launch < 0 {
		return p, fmt.Errorf("-launch %d: the process count must be positive", c.launch)
	}

	// Transport: explicit flag, or inferred from the tcp-only flags.
	wantsTCP := c.rank >= 0 || c.rendezvous != "" || c.launch > 0
	name := c.transport
	if name == "" {
		if wantsTCP {
			name = string(abft.TransportTCP)
		} else {
			name = string(abft.TransportChan)
		}
	}
	kind, err := abft.ParseTransport(name)
	if err != nil {
		return p, err
	}
	p.transport = kind

	// Disk checkpointing: whole-domain saves, so a single-process concern.
	if c.ckptEach < 0 {
		return p, fmt.Errorf("-ckptperiod %d: the checkpoint interval must be positive", c.ckptEach)
	}
	if c.ckptEach > 0 && c.ckptPath == "" {
		return p, fmt.Errorf("-ckptperiod sets how often -checkpoint saves; set -checkpoint path too")
	}
	if c.restore != "" && c.inject {
		return p, fmt.Errorf("-restore resumes a finished run's trajectory; -inject schedules faults relative to a fresh run — combine them and the injection lands at a different point than it names")
	}
	if c.buddy < 0 {
		return p, fmt.Errorf("-buddy %d: the checkpoint period must be positive", c.buddy)
	}
	if c.buddy > 0 && c.haloDepth > 1 && c.buddy%c.haloDepth != 0 {
		k := c.haloDepth
		return p, fmt.Errorf("-buddy %d is not a multiple of -halodepth %d: restores must land on halo-exchange boundaries (use -buddy %d)",
			c.buddy, k, ((c.buddy+k-1)/k)*k)
	}
	if c.dieAt < 0 {
		return p, fmt.Errorf("-die-at %d: the kill iteration must be positive", c.dieAt)
	}
	if c.epoch < 0 {
		return p, fmt.Errorf("-epoch %d: the incarnation number cannot be negative", c.epoch)
	}
	if c.soak < 0 {
		return p, fmt.Errorf("-soak %d: the pass count must be positive", c.soak)
	}
	if c.soak > 0 && c.chaos == "" {
		return p, fmt.Errorf("-soak repeats a run under a chaos plan; set -chaos plan.json")
	}
	if c.chaos != "" && p.deployment != abft.Clustered {
		return p, fmt.Errorf("-chaos injects faults into a cluster's transport; shape one with -rankgrid RxC (or -ranks N)")
	}
	if c.chaos != "" && c.inject {
		return p, fmt.Errorf("-chaos drills the transport (healed bit-identically) and -inject corrupts the domain (detected and repaired) — run the drills separately so each gate means something")
	}

	if kind == abft.TransportChan {
		switch {
		case c.buddy > 0:
			return p, fmt.Errorf("-buddy mirrors checkpoints between rank processes; the chan transport hosts every rank in one process (use -checkpoint for disk checkpoints)")
		case c.control != "":
			return p, fmt.Errorf("-control joins a tcp rank process to a recovery coordinator; the chan transport has no processes to lose")
		case c.recover:
			return p, fmt.Errorf("-recover respawns dead rank processes under -launch; the chan transport has none")
		case c.ckptDir != "":
			return p, fmt.Errorf("-ckptdir persists each rank process's buddy checkpoints; the chan transport hosts every rank in one process (use -checkpoint)")
		case c.epoch > 0:
			return p, fmt.Errorf("-epoch numbers a tcp rank process's incarnation; the chan transport has no respawns")
		case c.dieAt > 0 || c.die != "":
			return p, fmt.Errorf("-die/-die-at kill a tcp rank process mid-run; the chan transport hosts every rank in-process")
		case c.launch > 0:
			return p, fmt.Errorf("-launch forks a multi-process tcp cluster; it cannot run over the in-process chan transport (drop -transport chan, or drop -launch)")
		case c.rank >= 0:
			return p, fmt.Errorf("-rank names this process's rank under -transport tcp; the chan transport hosts every rank in-process")
		case c.rendezvous != "":
			return p, fmt.Errorf("-rendezvous is the tcp cluster's meeting point; the chan transport needs none")
		case c.bind != "":
			return p, fmt.Errorf("-bind shapes a tcp rank process's data listener; the chan transport opens no sockets")
		case c.tileOut != "":
			return p, fmt.Errorf("-tileout is written by tcp rank processes for the -launch parent to gather; the chan transport gathers in-process")
		}
		return p, nil
	}

	// tcp from here on.
	if p.deployment != abft.Clustered {
		return p, fmt.Errorf("-transport tcp deploys a cluster: set -rankgrid RxC (or -ranks N) to shape it")
	}
	if p.scheme != abft.Online {
		return p, fmt.Errorf("the cluster deployment protects with the online scheme only (got -abft %s)", p.scheme)
	}
	n := p.ranksX * p.ranksY
	if c.ckptPath != "" || c.restore != "" {
		return p, fmt.Errorf("-checkpoint/-restore save and load the whole domain from one process; a tcp cluster checkpoints through -buddy (and survives deaths with -recover)")
	}
	if c.ckptDir != "" && c.buddy < 1 {
		return p, fmt.Errorf("-ckptdir persists buddy checkpoints to disk; set -buddy j to take them")
	}
	if c.launch > 0 {
		if c.rank >= 0 {
			return p, fmt.Errorf("-launch is the parent role (fork every rank); -rank is the child role (be one rank) — set one, not both")
		}
		if c.control != "" {
			return p, fmt.Errorf("-control is wired onto the children by the -launch parent itself (add -recover); hand-started rank processes set it to the coordinator's address")
		}
		if c.epoch > 0 {
			return p, fmt.Errorf("-epoch marks a respawned rank process; the -launch parent sets it when respawning")
		}
		if c.dieAt > 0 {
			return p, fmt.Errorf("-die-at kills one rank process; under -launch name the victim with -die R@I")
		}
		if c.recover && c.buddy < 1 {
			return p, fmt.Errorf("-recover rolls dead ranks back to a buddy checkpoint; set -buddy j to take them")
		}
		if c.die != "" {
			r, i, err := parseDie(c.die)
			if err != nil {
				return p, err
			}
			if r < 0 || r >= n {
				return p, fmt.Errorf("-die %s targets rank %d outside the %d-rank cluster (-rankgrid %dx%d)", c.die, r, n, p.ranksY, p.ranksX)
			}
			if i < 1 {
				return p, fmt.Errorf("-die %s: the kill iteration must be >= 1", c.die)
			}
			p.dieRank, p.dieIter = r, i
		}
		if c.tileOut != "" {
			return p, fmt.Errorf("-tileout is set by the -launch parent on its children; don't set it yourself")
		}
		if c.bind != "" {
			return p, fmt.Errorf("-launch forks its cluster over loopback; -bind is for hand-started rank processes spanning hosts")
		}
		if c.launch != n {
			return p, fmt.Errorf("-launch %d must match the rank grid: -rankgrid %dx%d needs %d processes", c.launch, p.ranksY, p.ranksX, n)
		}
		if c.metricsAddr != "" {
			return p, fmt.Errorf("-metrics serves one process's counters; the -launch children would collide on the address (start rank processes by hand, each with its own -metrics)")
		}
		p.launch = true
		return p, nil
	}
	if c.recover {
		return p, fmt.Errorf("-recover is the -launch parent's job (host the coordinator, respawn the dead); a rank process just sets -control")
	}
	if c.soak > 0 {
		return p, fmt.Errorf("-soak repeats whole clusters; run it on the -launch parent (or loop your own launcher), not on one rank process")
	}
	if c.die != "" {
		return p, fmt.Errorf("-die routes a kill through the -launch parent; a rank process kills itself with -die-at I")
	}
	respawned := c.epoch > 0
	if respawned && c.control == "" {
		return p, fmt.Errorf("-epoch %d marks a respawned rank process, which fetches its state and rendezvous from the coordinator: set -control addr", c.epoch)
	}
	if c.control != "" && c.buddy < 1 {
		return p, fmt.Errorf("-control recovers by rolling back to buddy checkpoints; set -buddy j to take them")
	}
	if c.rank < 0 || (c.rendezvous == "" && !respawned) {
		return p, fmt.Errorf("-transport tcp runs one rank per process: set -rank K and -rendezvous host:port (or -launch %d to fork the whole cluster over loopback)", n)
	}
	if c.rank >= n {
		return p, fmt.Errorf("-rank %d outside the %d-rank cluster (-rankgrid %dx%d)", c.rank, n, p.ranksY, p.ranksX)
	}
	if c.dieAt > 0 && c.buddy < 1 {
		return p, fmt.Errorf("-die-at drills a death mid-run; without -buddy checkpoints nothing can recover it")
	}
	if c.buddy > 0 && c.metricsAddr != "" {
		return p, fmt.Errorf("-metrics pins one cluster's counters to an address; a -buddy run rebuilds its cluster across recovery epochs (drop one of them)")
	}
	return p, nil
}

func kernelByName(name string) (*stencil.Stencil[float32], error) {
	switch name {
	case "laplace":
		return stencil.Laplace5[float32](0.2), nil
	case "jacobi4":
		return stencil.Jacobi4[float32](), nil
	case "blur":
		return stencil.BoxBlur[float32](), nil
	case "advect":
		return stencil.Advect2D[float32](0.3, 0.2), nil
	default:
		return nil, fmt.Errorf("unknown kernel %q (want laplace|jacobi4|blur|advect)", name)
	}
}

func boundaryByName(name string) (grid.Boundary, error) {
	switch name {
	case "clamp":
		return grid.Clamp, nil
	case "periodic":
		return grid.Periodic, nil
	case "mirror":
		return grid.Mirror, nil
	case "constant":
		return grid.Constant, nil
	case "zero":
		return grid.Zero, nil
	default:
		return 0, fmt.Errorf("unknown boundary %q (want clamp|periodic|mirror|constant|zero)", name)
	}
}

// domain builds the operator, the deterministically-seeded initial grid and
// the (optional) injection plan. Every process of a tcp cluster calls this
// with the same flags, so every process derives identical state — which is
// what lets each rank carve its tile locally and lets the whole cluster
// route one global injection plan without communicating it.
func (c config) domain() (*abft.Op2D[float32], *abft.Grid[float32], *fault.Plan, error) {
	st, err := kernelByName(c.kernel)
	if err != nil {
		return nil, nil, nil, err
	}
	bc, err := boundaryByName(c.bcName)
	if err != nil {
		return nil, nil, nil, err
	}
	op := &abft.Op2D[float32]{St: st, BC: bc, BCValue: float32(c.bcValue)}

	rng := rand.New(rand.NewSource(c.seed))
	init := abft.New[float32](c.nx, c.ny)
	init.FillFunc(func(x, y int) float32 { return 100 + 50*rng.Float32() })

	var plan *fault.Plan
	if c.inject {
		inj := fault.RandomSingle(rng, c.iters, c.nx, c.ny, 1, 32)
		plan = fault.NewPlan(inj)
		fmt.Printf("injection: %v\n", inj)
	}
	return op, init, plan, nil
}

// spec assembles the Build input for this process's protected run.
func (c config) spec(p plan, op *abft.Op2D[float32], init *abft.Grid[float32], injectPlan *fault.Plan) abft.Spec[float32] {
	spec := abft.Spec[float32]{
		Scheme:     p.scheme,
		Deployment: p.deployment,
		Op2D:       op,
		Init:       init,
		Detector:   abft.Detector[float32]{Epsilon: float32(c.epsilon), AbsFloor: 1},
		Pool:       abft.NewPool(),
		RanksX:     p.ranksX,
		RanksY:     p.ranksY,
		Inject:     injectPlan,
	}
	if p.deployment == abft.Clustered {
		spec.HaloDepth = c.haloDepth
	}
	if p.transport == abft.TransportTCP {
		spec.Transport = abft.TransportTCP
		spec.Rank = c.rank
		spec.Rendezvous = c.rendezvous
		spec.Bind = c.bind
	}
	if p.scheme == abft.Offline {
		spec.Period = c.period
	}
	if p.scheme == abft.Blocked {
		bs := c.blockSize
		if bs <= 0 {
			bs = 64
		}
		spec.BlockX, spec.BlockY = bs, bs
	}
	return spec
}

func main() {
	var c config
	flag.IntVar(&c.nx, "nx", 256, "domain width")
	flag.IntVar(&c.ny, "ny", 256, "domain height")
	flag.IntVar(&c.iters, "iters", 100, "iterations")
	flag.StringVar(&c.kernel, "kernel", "laplace", "laplace|jacobi4|blur|advect")
	flag.StringVar(&c.bcName, "bc", "clamp", "clamp|periodic|mirror|constant|zero")
	flag.Float64Var(&c.bcValue, "bcvalue", 0, "ghost value for -bc constant")
	flag.StringVar(&c.mode, "abft", "online", "none|online|offline|blocked")
	flag.IntVar(&c.period, "period", 16, "offline detection period")
	flag.Float64Var(&c.epsilon, "epsilon", 1e-5, "detection threshold")
	flag.BoolVar(&c.inject, "inject", false, "inject a single random bit-flip")
	flag.Int64Var(&c.seed, "seed", 1, "seed")
	flag.IntVar(&c.blockSize, "blocksize", 0, "tile edge for -abft blocked (with -abft online, implies blocked)")
	flag.IntVar(&c.ranks, "ranks", 0, "decompose over N simulated rank row-bands: alias for -rankgrid Nx1 (cluster deployment, online scheme)")
	flag.StringVar(&c.rankGrid, "rankgrid", "", "decompose over an RxC Cartesian rank grid, e.g. 2x3 (cluster deployment, online scheme)")
	flag.IntVar(&c.haloDepth, "halodepth", 1, "exchange k-deep halos every k iterations, recomputing boundary shells locally in between (cluster deployments; 1 = classic exchange every iteration)")
	flag.StringVar(&c.transport, "transport", "", "cluster communication backend: chan (in-process, default) or tcp (one rank per OS process)")
	flag.IntVar(&c.rank, "rank", -1, "the rank this process hosts (-transport tcp)")
	flag.StringVar(&c.rendezvous, "rendezvous", "", "host:port the tcp cluster's processes meet at (rank 0's process serves it)")
	flag.StringVar(&c.bind, "bind", "", "address this rank's tcp data listener binds and advertises (default 127.0.0.1:0; bind a routable interface, e.g. 10.0.0.5:0, for multi-host clusters)")
	flag.IntVar(&c.launch, "launch", 0, "fork N rank processes over loopback, merge their stats and verify the gathered grid (implies -transport tcp)")
	flag.StringVar(&c.tileOut, "tileout", "", "write this rank's final tile to a file (set by the -launch parent)")
	flag.IntVar(&c.buddy, "buddy", 0, "mirror each rank's state to a buddy rank every j iterations (tcp clusters; enables fail-stop recovery)")
	flag.StringVar(&c.control, "control", "", "recovery coordinator address this tcp rank process reports faults to (requires -buddy)")
	flag.BoolVar(&c.recover, "recover", false, "host a recovery coordinator and respawn dead rank processes (-launch parent; requires -buddy)")
	flag.IntVar(&c.epoch, "epoch", 0, "cluster incarnation this rank process joins at; > 0 marks a respawned claimant that fetches its state from -control")
	flag.IntVar(&c.dieAt, "die-at", 0, "kill this rank's own process after completing iteration N — a fail-stop fault drill (tcp rank processes)")
	flag.StringVar(&c.die, "die", "", "fault drill under -launch: R@I kills rank R's process after iteration I (pair with -recover to survive it)")
	flag.StringVar(&c.ckptPath, "checkpoint", "", "write disk checkpoints of the whole domain under this base path (single-process runs; see -ckptperiod)")
	flag.IntVar(&c.ckptEach, "ckptperiod", 0, "iterations between -checkpoint saves (default: one checkpoint when the run finishes)")
	flag.StringVar(&c.restore, "restore", "", "resume from the newest valid checkpoint under this base path (or an exact checkpoint file)")
	flag.StringVar(&c.ckptDir, "ckptdir", "", "shared directory where each tcp rank process also persists its buddy checkpoints — the whole-cluster fallback a buddy-pair double death restores from (requires -buddy; with -launch -recover the coordinator escalates to it)")
	flag.StringVar(&c.chaos, "chaos", "", "inject transport faults from this JSON plan (cluster deployments; wire-level faults need -transport tcp)")
	flag.Int64Var(&c.chaosSeed, "chaosseed", 1, "seed for -chaos injection: the same plan, seed and workload replays the same faults")
	flag.IntVar(&c.soak, "soak", 0, "repeat the whole run N times under -chaos, advancing the chaos seed each pass; every pass must verify")
	flag.StringVar(&c.cpuProf, "cpuprofile", "", "write a CPU profile of the protected run to this file (go tool pprof; a -launch parent forwards it to each child with a .rankN suffix)")
	flag.StringVar(&c.memProf, "memprofile", "", "write a heap profile taken after the protected run to this file (forwarded per child under -launch, .rankN suffix)")
	flag.StringVar(&c.trace, "trace", "", "write a Chrome trace-event timeline of the run to this file (open in chrome://tracing or ui.perfetto.dev; a -launch parent merges its children's timelines)")
	flag.StringVar(&c.metricsAddr, "metrics", "", "serve live observability on this address while the run executes: Prometheus text at /metrics, expvar at /debug/vars, pprof at /debug/pprof/")
	flag.Parse()

	p, err := c.resolve()
	if err != nil {
		fail(err)
	}
	// Soak mode: the same run repeated with an advancing chaos seed, every
	// pass fully verified — the long-tail sieve for heal-path races.
	passes := 1
	if c.soak > 0 {
		passes = c.soak
	}
	for s := 0; s < passes; s++ {
		cc := c
		cc.chaosSeed = c.chaosSeed + int64(s)
		if passes > 1 {
			fmt.Printf("soak: pass %d/%d (chaos seed %d)\n", s+1, passes, cc.chaosSeed)
		}
		if p.launch {
			if err := runLaunch(cc, p); err != nil {
				fail(err)
			}
			continue
		}
		if err := runProcess(cc, p); err != nil {
			fail(err)
		}
	}
}

// runProcess runs this process's share of the computation: the whole
// domain for local and chan-cluster deployments, or one rank's tile for a
// tcp rank process.
func runProcess(c config, p plan) error {
	op, init, injectPlan, err := c.domain()
	if err != nil {
		return err
	}
	tcpRank := p.transport == abft.TransportTCP

	// Error-free reference for the arithmetic-error report. A tcp rank
	// process skips it: the -launch parent (or the operator) owns the
	// cross-process comparison, and a full-domain run per rank would
	// defeat the point of distributing.
	var ref abft.Protector[float32]
	if !tcpRank {
		ref, err = abft.Build(abft.Spec[float32]{Op2D: op, Init: init})
		if err != nil {
			return err
		}
		ref.Run(c.iters)
	}

	// Restoring resumes the same trajectory the checkpoint was cut from, so
	// the reference above (the full run from the seeded domain) is still the
	// right comparison: a bit-exact resume converges to the same state.
	startIter := 0
	runInit := init
	if c.restore != "" {
		g, _, iter, err := resilience.LoadLatest[float32](c.restore)
		if err != nil {
			return err
		}
		if g.Nx() != c.nx || g.Ny() != c.ny {
			return fmt.Errorf("checkpoint under %s is a %dx%d domain; this run is %dx%d", c.restore, g.Nx(), g.Ny(), c.nx, c.ny)
		}
		if iter > c.iters {
			return fmt.Errorf("checkpoint under %s is at iteration %d, past -iters %d", c.restore, iter, c.iters)
		}
		runInit = g
		startIter = iter
		fmt.Printf("restored iteration %d from %s\n", iter, c.restore)
	}

	// Profiling covers exactly the protected run (build through Finalize),
	// not the reference run above or the reporting below, so profiles
	// isolate the hot path under measurement. fail() flushes a started
	// profile before exiting so an error never leaves a truncated file.
	if c.cpuProf != "" {
		f, err := os.Create(c.cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	// Telemetry rides along whenever an observability sink wants it; runs
	// without -trace/-metrics build with a nil collector and pay nothing.
	var tel *abft.Telemetry
	if c.trace != "" || c.metricsAddr != "" {
		tel = abft.NewTelemetry(0)
	}

	harness, err := newChaosHarness(c, p)
	if err != nil {
		return err
	}

	timer := metrics.StartTimer()
	var prot abft.Protector[float32]
	var extra abft.Stats
	if tcpRank && c.buddy > 0 {
		prot, extra, err = runResilient(c, p, op, init, injectPlan, tel, harness)
		if err != nil {
			return err
		}
	} else {
		spec := c.spec(p, op, runInit, injectPlan)
		spec.Telemetry = tel
		harness.apply(&spec)
		prot, err = abft.Build(spec)
		if err != nil {
			return err
		}
		if c.metricsAddr != "" {
			ln, err := serveMetrics(c.metricsAddr, tel, prot)
			if err != nil {
				return err
			}
			defer ln.Close()
		}
		if err := runChunked(prot, c, startIter); err != nil {
			return err
		}
	}
	prot.Finalize()
	flushCPUProfile()
	stats := prot.Stats().Merge(extra)

	if c.trace != "" {
		if err := writeTraceFile(c.trace, tel); err != nil {
			return err
		}
	}

	if c.memProf != "" {
		f, err := os.Create(c.memProf)
		if err != nil {
			return err
		}
		runtime.GC() // settle allocations so the heap profile shows live + cumulative cleanly
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}

	fmt.Printf("stencilrun %s on %dx%d (%s boundaries), %d iterations, scheme=%s deployment=%s transport=%s\n",
		op.St.Name, c.nx, c.ny, op.BC, c.iters, p.scheme, p.deployment, p.transport)
	fmt.Printf("wall time:        %.4fs\n", timer.Seconds())
	if ref != nil {
		fmt.Printf("arithmetic error: %.6g\n", metrics.L2Error(prot.Grid(), ref.Grid()))
	}
	fmt.Printf("protector stats:  %v\n", stats)
	if harness != nil {
		fmt.Printf("chaos: injected %s (plan %s, seed %d)\n", harness.summary(), c.chaos, c.chaosSeed)
		if !tcpRank && ref != nil {
			// Transport chaos must be invisible in the result: every absorbed
			// or healed fault leaves the run bit-identical to the fault-free
			// reference. (A tcp rank process leaves this gate to its -launch
			// parent's cross-process gather comparison.)
			g, rg := prot.Grid(), ref.Grid()
			for y := 0; y < c.ny; y++ {
				for x := 0; x < c.nx; x++ {
					if g.At(x, y) != rg.At(x, y) {
						return fmt.Errorf("chaos run deviates from the fault-free reference at (%d,%d): %v != %v", x, y, g.At(x, y), rg.At(x, y))
					}
				}
			}
			fmt.Println("chaos: result is bit-identical to the fault-free reference")
		}
	}
	if cl, ok := prot.(*abft.Cluster[float32]); ok {
		ids := cl.LocalRanks()
		for i, s := range cl.RankStats() {
			fmt.Printf("  rank %d tile %v: %v\n", ids[i], cl.Tile(ids[i]), s)
		}
		if tcpRank {
			if c.tileOut != "" {
				if err := writeTile(c.tileOut, c.rank, cl.Tile(c.rank), prot.Grid()); err != nil {
					return err
				}
			}
			if err := printChildStats(c.rank, stats); err != nil {
				return err
			}
			if err := cl.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// runChunked drives the protected run to -iters, cutting it at every
// absolute multiple of the disk-checkpoint period when -checkpoint is set so
// each boundary's domain state lands in the rotation files. Under -chaos a
// cluster runs through RunRecover so an injected fault the transport cannot
// absorb ends as a classified error naming the edge, never a panic.
func runChunked(prot abft.Protector[float32], c config, startIter int) error {
	step := func(n int) error {
		if cl, ok := prot.(*abft.Cluster[float32]); ok && c.chaos != "" {
			return cl.RunRecover(n)
		}
		prot.Run(n)
		return nil
	}
	if c.ckptPath == "" {
		return step(c.iters - startIter)
	}
	saver := resilience.NewDiskSaver[float32](c.ckptPath)
	period := c.ckptEach
	if period <= 0 {
		period = c.iters // one checkpoint when the run finishes
	}
	for done := startIter; done < c.iters; {
		next := done - done%period + period
		if next > c.iters {
			next = c.iters
		}
		if err := step(next - done); err != nil {
			return err
		}
		done = next
		if err := saver.Save(done, prot.Grid(), nil); err != nil {
			return err
		}
		fmt.Printf("checkpoint: iteration %d saved under %s\n", done, c.ckptPath)
	}
	return nil
}

// runResilient is the tcp rank process's fault-tolerant path: the cluster is
// built through a factory so fail-stop recovery can rebuild it per epoch,
// buddy checkpoints flow every -buddy iterations, and with -control a peer
// process's death rolls the run back instead of killing it.
func runResilient(c config, p plan, op *abft.Op2D[float32], init *abft.Grid[float32], injectPlan *fault.Plan, tel *abft.Telemetry, harness *chaosHarness) (abft.Protector[float32], abft.Stats, error) {
	var extra abft.Stats
	// The live cluster, tracked across incarnations so progress lines can
	// report its transport's healing counters.
	var curMu sync.Mutex
	var cur *abft.Cluster[float32]
	factory := func(epoch int, rdv string, localRanks []int, after func(rank, iter int)) (*abft.Cluster[float32], error) {
		hook := after
		if c.dieAt > 0 && epoch == 0 {
			hook = func(r, it int) {
				after(r, it)
				if r == c.rank && it+1 == c.dieAt {
					killSelf()
				}
			}
		}
		spec := c.spec(p, op, init, injectPlan)
		spec.Telemetry = tel
		spec.Rendezvous = rdv
		spec.LocalRanks = localRanks
		spec.AfterStep = hook
		harness.apply(&spec)
		prot, err := abft.Build(spec)
		if err != nil {
			return nil, err
		}
		cl := prot.(*abft.Cluster[float32])
		curMu.Lock()
		cur = cl
		curMu.Unlock()
		return cl, nil
	}
	var genMu sync.Mutex
	cfg := resilience.Config[float32]{
		Total: c.iters, Period: c.buddy, Control: c.control,
		LocalRanks: []int{c.rank}, Factory: factory, Telemetry: tel,
		Rendezvous: c.rendezvous,
		DiskDir:    c.ckptDir,
		OnCheckpoint: func(rank, gen int) {
			// "CHILDGEN rank gen reconnects resends": the healing counters
			// ride each progress line, so a parent diagnosing a death can say
			// how hard the transport fought before losing the process.
			var reconnects, resends int64
			curMu.Lock()
			if cur != nil {
				if m, ok := cur.Transport().(dist.MetricsSource); ok {
					tm := m.Metrics()
					reconnects, resends = tm.Reconnects, tm.Resends
				}
			}
			curMu.Unlock()
			genMu.Lock()
			fmt.Printf("%s%d %d %d %d\n", childGenPrefix, rank, gen, reconnects, resends)
			genMu.Unlock()
		},
	}
	if c.epoch > 0 {
		adoption, state, err := resilience.RequestAdoption[float32](c.control, c.rank, 30*time.Second)
		if err != nil {
			return nil, extra, fmt.Errorf("claiming rank %d from the coordinator: %w", c.rank, err)
		}
		cfg.Epoch, cfg.Rendezvous, cfg.StartIter = adoption.Epoch, adoption.Rendezvous, adoption.RestartGen
		if state != nil {
			cfg.InitialState = map[int][]float32{c.rank: state}
		}
		fmt.Printf("respawned as rank %d at epoch %d, resuming from generation %d\n", c.rank, adoption.Epoch, adoption.RestartGen)
	}
	cl, extra, err := resilience.Run(cfg)
	if err != nil {
		return nil, extra, err
	}
	return cl, extra, nil
}

// killSelf delivers an unconditional SIGKILL to this process — the fault
// drill behind -die-at: no deferred cleanup, no goodbye on any socket;
// exactly how a crashed or OOM-killed rank process looks to its peers.
func killSelf() {
	if p, err := os.FindProcess(os.Getpid()); err == nil {
		p.Kill()
	}
	select {} // unreachable: SIGKILL is not catchable
}

// stopCPUProfile is set while a CPU profile is being collected;
// flushCPUProfile runs it once (from the happy path or from fail).
var stopCPUProfile func()

func flushCPUProfile() {
	if stopCPUProfile != nil {
		stopCPUProfile()
		stopCPUProfile = nil
	}
}

func fail(err error) {
	flushCPUProfile()
	fmt.Fprintln(os.Stderr, "stencilrun:", err)
	os.Exit(1)
}
