package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	abft "stencilabft"
	"stencilabft/internal/chaos"
)

// The -chaos surface: a JSON fault plan is split by the resolved backend —
// wire faults (drop/dup/reorder/corrupt/killconn/partition) ride the tcp
// transport's connection hook, where the self-healing layer must absorb
// them bit-identically; seam faults (delay/stall, plus drop/partition on
// the channel backend) wrap the transport itself. One harness is built per
// process and survives recovery epochs, so an edge's scripted fault indices
// keep counting across rebuilt connections and clusters.

// chaosHarness owns this process's injectors and applies them to every
// Spec the run builds.
type chaosHarness struct {
	seed int64
	wire *chaos.Injector // conn-level faults (tcp only)
	seam *chaos.Injector // transport-level faults (any backend)

	// needTimeout is set when the seam plan suppresses messages outright
	// (drop/partition): a suppressed message must end as a classified
	// timeout fault, never a hang, so apply bounds the receives.
	needTimeout bool
}

// newChaosHarness loads the -chaos plan and splits it for the resolved
// transport. Plans whose faults need a wire (frame corruption on the
// channel backend) are rejected here, before any socket opens.
func newChaosHarness(c config, p plan) (*chaosHarness, error) {
	if c.chaos == "" {
		return nil, nil
	}
	cp, err := chaos.Load(c.chaos)
	if err != nil {
		return nil, err
	}
	seamFaults, connFaults, err := cp.Split(p.transport == abft.TransportTCP)
	if err != nil {
		return nil, err
	}
	h := &chaosHarness{seed: c.chaosSeed}
	if len(connFaults) > 0 {
		h.wire = chaos.NewInjector(connFaults, c.chaosSeed)
	}
	if len(seamFaults) > 0 {
		h.seam = chaos.NewInjector(seamFaults, c.chaosSeed)
		for _, f := range seamFaults {
			if f.Type == chaos.Drop || f.Type == chaos.Partition {
				h.needTimeout = true
			}
		}
	}
	return h, nil
}

// apply installs the harness's injectors onto one Spec. Safe to call once
// per cluster incarnation — the injectors (and their per-edge fault
// counters) are shared across calls.
func (h *chaosHarness) apply(spec *abft.Spec[float32]) {
	if h == nil {
		return
	}
	if h.wire != nil {
		spec.WrapConn = h.wire.WrapConn()
	}
	if h.seam != nil {
		in := h.seam
		spec.WrapTransport = func(tr abft.Transport[float32], rx, ry int, ring bool) abft.Transport[float32] {
			return chaos.Wrap(tr, in, rx, ry, ring)
		}
		if h.needTimeout && spec.RecvTimeout == 0 {
			spec.RecvTimeout = 10 * time.Second
		}
	}
}

// total reports how many injections fired so far across both seams.
func (h *chaosHarness) total() int64 {
	if h == nil {
		return 0
	}
	var t int64
	if h.wire != nil {
		t += h.wire.Total()
	}
	if h.seam != nil {
		t += h.seam.Total()
	}
	return t
}

// summary renders the merged per-type injection tallies, e.g.
// "corrupt=1 drop=2 stall=4".
func (h *chaosHarness) summary() string {
	merged := map[string]int64{}
	if h.wire != nil {
		for k, v := range h.wire.Stats() {
			merged[k] += v
		}
	}
	if h.seam != nil {
		for k, v := range h.seam.Stats() {
			merged[k] += v
		}
	}
	if len(merged) == 0 {
		return "nothing (no fault in the plan fired)"
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, merged[k]))
	}
	return strings.Join(parts, " ")
}
