package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	abft "stencilabft"
	"stencilabft/internal/dist"
	"stencilabft/internal/metrics"
	"stencilabft/internal/resilience"
	"stencilabft/internal/stats"
	"stencilabft/internal/telemetry"
)

// The -launch parent: fork one OS process per rank of the grid over
// loopback TCP, merge the children's stats, reassemble the global domain
// from their tile files, and verify the run — bit-identical to an
// in-process single-process reference when error-free, detected-and-
// repaired when -inject is on. Any child failure or verification miss is a
// non-zero exit, which is what the CI multiprocess job gates on.

// childStatsPrefix marks the machine-readable stats line a tcp rank
// process prints for its -launch parent.
const childStatsPrefix = "CHILDSTATS "

// printChildStats emits this rank's counters for the parent to merge.
func printChildStats(rank int, st abft.Stats) error {
	b, err := json.Marshal(st)
	if err != nil {
		return err
	}
	fmt.Printf("%s%d %s\n", childStatsPrefix, rank, b)
	return nil
}

// runLaunch forks p.ranksX*p.ranksY rank processes of this same binary
// over loopback, then verifies their merged result.
func runLaunch(c config, p plan) error {
	n := p.ranksX * p.ranksY
	exe, err := os.Executable()
	if err != nil {
		return err
	}

	// The rendezvous: an explicit -rendezvous wins (e.g. a fixed port an
	// external observer knows); otherwise reserve a loopback port, then
	// free it for rank 0's process to bind. The children retry their
	// dial, so start order does not matter; the only race is another
	// process stealing the port in the handover window, which the
	// bit-identical check would surface.
	rendezvous := c.rendezvous
	if rendezvous == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		rendezvous = ln.Addr().String()
		ln.Close()
	}

	tileDir, err := os.MkdirTemp("", "stencilrun-tiles-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tileDir)

	// Fail-stop recovery: the parent hosts the coordinator the children
	// report rank deaths to, and its Respawn callback is how a replacement
	// process for a dead rank gets forked — routed through a channel so the
	// wait loop below stays the single owner of the child bookkeeping.
	var control string
	respawns := make(chan resilience.Plan, 4)
	if c.recover {
		co, err := resilience.StartCoordinator(resilience.CoordinatorConfig{
			RanksX: p.ranksX, RanksY: p.ranksY,
			DiskDir: c.ckptDir,
			Respawn: func(plan resilience.Plan) error {
				respawns <- plan
				return nil
			},
			OnDecision: func(plan resilience.Plan) {
				if plan.Err != "" {
					return
				}
				if len(plan.DeadRanks) > 0 {
					fmt.Printf("coordinator: ranks %v declared dead together; cluster restores generation %d from disk (%s) as epoch %d\n",
						plan.DeadRanks, plan.RestartGen, plan.Disk, plan.Epoch)
					return
				}
				fmt.Printf("coordinator: rank %d declared dead; cluster rolls back to generation %d as epoch %d\n",
					plan.Dead, plan.RestartGen, plan.Epoch)
			},
		})
		if err != nil {
			return err
		}
		defer co.Close()
		control = co.Addr()
		fmt.Printf("stencilrun -launch: recovery coordinator at %s (buddy period %d)\n", control, c.buddy)
	}

	fmt.Printf("stencilrun -launch: %d rank processes over a %dx%d grid, rendezvous %s\n",
		n, p.ranksY, p.ranksX, rendezvous)

	timer := metrics.StartTimer()
	type child struct {
		rank, epoch int
		cmd         *exec.Cmd
		out         *bytes.Buffer
	}
	type exitMsg struct {
		idx int
		err error
	}
	var children []*child
	exits := make(chan exitMsg, 2*n)
	spawn := func(rank, epoch int) error {
		ch := &child{rank: rank, epoch: epoch, out: &bytes.Buffer{}}
		ch.cmd = exec.Command(exe, childArgs(c, p, rendezvous, control, tileDir, rank, epoch)...)
		ch.cmd.Stdout = ch.out
		ch.cmd.Stderr = os.Stderr
		if err := ch.cmd.Start(); err != nil {
			return fmt.Errorf("starting rank %d (epoch %d): %w", rank, epoch, err)
		}
		idx := len(children)
		children = append(children, ch)
		go func() { exits <- exitMsg{idx, ch.cmd.Wait()} }()
		return nil
	}
	for k := 0; k < n; k++ {
		if err := spawn(k, 0); err != nil {
			return err
		}
	}

	// The wait loop: every rank must end with one successful terminal
	// process. Without -recover the first failure aborts the launch; with it
	// a death is diagnosed and the loop keeps serving exits and respawns
	// until the cluster completes (or nothing that could complete remains).
	finished := make(map[int]*child, n)
	running := n
	deaths := 0
	for len(finished) < n {
		if running == 0 {
			select {
			case plan := <-respawns:
				if err := spawn(plan.Dead, plan.Epoch); err != nil {
					return err
				}
				running++
			case <-time.After(15 * time.Second):
				return fmt.Errorf("no rank processes left and no respawn pending (%d of %d ranks finished)", len(finished), n)
			}
			continue
		}
		select {
		case plan := <-respawns:
			if err := spawn(plan.Dead, plan.Epoch); err != nil {
				return err
			}
			running++
		case e := <-exits:
			running--
			ch := children[e.idx]
			if e.err == nil {
				finished[ch.rank] = ch
				continue
			}
			if !c.recover {
				return fmt.Errorf("rank %d process failed: %w (its output follows)\n%s", ch.rank, e.err, ch.out.String())
			}
			deaths++
			fmt.Println(deathReport(ch.rank, ch.epoch, e.err, ch.out.Bytes()))
			if deaths > n {
				return fmt.Errorf("%d rank processes died — more than the cluster holds; giving up", deaths)
			}
		}
	}
	wall := timer.Seconds()

	// Merge the children's trace timelines onto one file. Every child
	// stamped its spans with absolute wall-clock timestamps under its own
	// global rank pid, so the merge is a concatenation plus a re-base of
	// the time origin.
	if c.trace != "" {
		if err := mergeChildTraces(c.trace, tileDir, n); err != nil {
			return err
		}
	}

	// Merge the children's counters. Every child reports the same
	// lockstep Iterations, so the merge normalises it back to one global
	// sweep count, the same convention Cluster.Stats uses in-process.
	perRank := make([]abft.Stats, n)
	for k := 0; k < n; k++ {
		st, err := childStats(finished[k].out.Bytes(), k)
		if err != nil {
			return err
		}
		perRank[k] = st
	}
	merged := stats.MergeAll(perRank)
	merged.Iterations = perRank[0].Iterations

	// A scheduled fault drill that left no trace in the counters means the
	// kill never landed or the survivors never recovered — either way the
	// run did not exercise what it claims, so the gate fails it.
	if p.dieIter > 0 && c.recover {
		if deaths < 1 {
			return fmt.Errorf("the -die %s drill killed no rank process (merged stats: %v)", c.die, merged)
		}
		if merged.Recoveries < 1 {
			return fmt.Errorf("the -die %s drill completed without any recorded recovery (merged stats: %v)", c.die, merged)
		}
	}

	// Reassemble the global domain from the tile files.
	op, init, _, err := c.domain()
	if err != nil {
		return err
	}
	decomp := dist.Decomp{Nx: c.nx, Ny: c.ny, RanksX: p.ranksX, RanksY: p.ranksY}
	global := abft.New[float32](c.nx, c.ny)
	for k := 0; k < n; k++ {
		if err := readTileInto(tilePath(tileDir, k), k, decomp.TileOf(k), global); err != nil {
			return err
		}
	}

	// The single-process reference: same operator, same seeded domain.
	ref, err := abft.Build(abft.Spec[float32]{Op2D: op, Init: init})
	if err != nil {
		return err
	}
	ref.Run(c.iters)

	fmt.Printf("wall time:        %.4fs (%d processes)\n", wall, n)
	fmt.Printf("merged stats:     %v\n", merged)
	for k, st := range perRank {
		fmt.Printf("  rank %d tile %v: %v\n", k, decomp.TileOf(k), st)
	}

	if c.inject {
		if merged.Detections < 1 || merged.CorrectedPoints+merged.ChecksumRepairs < 1 {
			return fmt.Errorf("the injected corruption was not detected/repaired by any rank process (merged stats: %v)", merged)
		}
		fmt.Printf("arithmetic error: %.6g (post-repair residual vs the error-free reference)\n",
			metrics.L2Error(global, ref.Grid()))
		fmt.Printf("injection handled: detections=%d corrected=%d checksum-repairs=%d across %d processes\n",
			merged.Detections, merged.CorrectedPoints, merged.ChecksumRepairs, n)
		return nil
	}

	refGrid := ref.Grid()
	for y := 0; y < c.ny; y++ {
		for x := 0; x < c.nx; x++ {
			if global.At(x, y) != refGrid.At(x, y) {
				return fmt.Errorf("gathered grid differs from the single-process reference at (%d,%d): %v != %v (rank %d's tile)",
					x, y, global.At(x, y), refGrid.At(x, y), decomp.OwnerOf(x, y))
			}
		}
	}
	fmt.Printf("gathered grid is bit-identical to the single-process reference (%dx%d points, %d processes)\n",
		c.nx, c.ny, n)
	return nil
}

// childArgs assembles a rank child's command line. epoch > 0 marks a
// respawned claimant, which fetches its rendezvous, restart generation and
// tile state from the coordinator (-control) instead of the original
// bootstrap address — so it gets no -rendezvous and never a -die-at.
func childArgs(c config, p plan, rendezvous, control, tileDir string, rank, epoch int) []string {
	args := []string{
		"-nx", fmt.Sprint(c.nx), "-ny", fmt.Sprint(c.ny), "-iters", fmt.Sprint(c.iters),
		"-kernel", c.kernel, "-bc", c.bcName, "-bcvalue", fmt.Sprint(c.bcValue),
		"-abft", c.mode, "-epsilon", fmt.Sprint(c.epsilon), "-seed", fmt.Sprint(c.seed),
		"-rankgrid", fmt.Sprintf("%dx%d", p.ranksY, p.ranksX),
		"-transport", "tcp", "-rank", fmt.Sprint(rank),
		"-tileout", tilePath(tileDir, rank),
	}
	if epoch > 0 {
		args = append(args, "-epoch", fmt.Sprint(epoch))
	} else {
		args = append(args, "-rendezvous", rendezvous)
	}
	if c.haloDepth > 1 {
		args = append(args, "-halodepth", fmt.Sprint(c.haloDepth))
	}
	if c.buddy > 0 {
		args = append(args, "-buddy", fmt.Sprint(c.buddy))
	}
	if control != "" {
		args = append(args, "-control", control)
	}
	if epoch == 0 && p.dieIter > 0 && rank == p.dieRank {
		args = append(args, "-die-at", fmt.Sprint(p.dieIter))
	}
	if c.inject {
		args = append(args, "-inject")
	}
	if c.ckptDir != "" {
		args = append(args, "-ckptdir", c.ckptDir)
	}
	if c.chaos != "" {
		args = append(args, "-chaos", c.chaos, "-chaosseed", fmt.Sprint(c.chaosSeed))
	}
	if c.trace != "" {
		args = append(args, "-trace", childTracePath(tileDir, rank))
	}
	// Profiles are per-process by nature; forward them with a rank suffix
	// so the children don't clobber one file.
	if c.cpuProf != "" {
		args = append(args, "-cpuprofile", fmt.Sprintf("%s.rank%d", c.cpuProf, rank))
	}
	if c.memProf != "" {
		args = append(args, "-memprofile", fmt.Sprintf("%s.rank%d", c.memProf, rank))
	}
	return args
}

// childGenPrefix marks the machine-readable progress line a -buddy rank
// process prints at every completed buddy checkpoint:
// "CHILDGEN rank gen reconnects resends" — the trailing pair is the
// transport's healing counters at that point. It is what lets the parent
// say how far a dead rank had gotten and how hard its connections fought.
const childGenPrefix = "CHILDGEN "

// lastChildGen scans a child's captured output for the newest buddy
// checkpoint generation it reported for rank, plus the transport healing
// counters (reconnects, resent frames) stamped on that line. Two-field
// lines from older builds still parse, with zero counters.
func lastChildGen(out []byte, rank int) (gen int, reconnects, resends int64, ok bool) {
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, childGenPrefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, childGenPrefix))
		if len(fields) < 2 {
			continue
		}
		r, errR := strconv.Atoi(fields[0])
		g, errG := strconv.Atoi(fields[1])
		if errR != nil || errG != nil || r != rank {
			continue
		}
		var rc, rs int64
		if len(fields) >= 4 {
			rc, _ = strconv.ParseInt(fields[2], 10, 64)
			rs, _ = strconv.ParseInt(fields[3], 10, 64)
		}
		if !ok || g > gen {
			gen, reconnects, resends, ok = g, rc, rs, true
		}
	}
	return gen, reconnects, resends, ok
}

// deathReport names a dead rank process, how it exited, the last buddy
// checkpoint generation it had reported, and how much transport healing
// (reconnects, resent frames) it had done by then — the launcher-side
// diagnostic for a fail-stop event.
func deathReport(rank, epoch int, err error, out []byte) string {
	cause := err.Error()
	var ee *exec.ExitError
	if errors.As(err, &ee) && ee.ProcessState != nil {
		cause = ee.ProcessState.String()
	}
	progress := "no buddy checkpoint reported"
	if gen, reconnects, resends, ok := lastChildGen(out, rank); ok {
		progress = fmt.Sprintf("last buddy checkpoint at generation %d", gen)
		if reconnects > 0 || resends > 0 {
			progress += fmt.Sprintf(" after %d reconnects and %d resent frames", reconnects, resends)
		}
	}
	return fmt.Sprintf("rank %d process (epoch %d) died: %s; %s", rank, epoch, cause, progress)
}

// childTracePath is where the -launch parent tells rank k to write its
// per-process trace file, next to the tile files.
func childTracePath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("trace-%d.json", rank))
}

// mergeChildTraces concatenates the children's trace files onto one
// re-based timeline and writes it to path.
func mergeChildTraces(path, dir string, n int) error {
	parts := make([]telemetry.TraceFile, 0, n)
	for k := 0; k < n; k++ {
		f, err := os.Open(childTracePath(dir, k))
		if err != nil {
			return fmt.Errorf("rank %d wrote no trace: %w", k, err)
		}
		tf, err := telemetry.ParseTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("rank %d trace: %w", k, err)
		}
		parts = append(parts, tf)
	}
	merged := telemetry.MergeTraces(parts)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(merged); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: merged %d rank timelines (%d lanes) into %s\n",
		n, len(merged.RankLanes()), path)
	return nil
}

// childStats extracts the CHILDSTATS line rank k printed.
func childStats(out []byte, k int) (abft.Stats, error) {
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, childStatsPrefix) {
			continue
		}
		rankField, payload, ok := strings.Cut(strings.TrimPrefix(line, childStatsPrefix), " ")
		if rank, err := strconv.Atoi(rankField); !ok || err != nil || rank != k {
			continue
		}
		if !strings.HasPrefix(payload, "{") {
			return abft.Stats{}, fmt.Errorf("rank %d stats line %q carries no JSON payload", k, line)
		}
		var st abft.Stats
		if err := json.Unmarshal([]byte(payload), &st); err != nil {
			return st, fmt.Errorf("rank %d stats line %q: %w", k, line, err)
		}
		return st, nil
	}
	return abft.Stats{}, fmt.Errorf("rank %d printed no %s line; its output:\n%s", k, strings.TrimSpace(childStatsPrefix), out)
}

// Tile files: how a rank process hands its final tile to the -launch
// parent. A small sanity header guards against mixed-up runs, then the
// tile's rows as raw little-endian float32 bits — bit-exact, which is the
// whole point of the gather comparison.
const tileMagic = uint32(0x5354544C) // "STTL"

type tileHeader struct {
	Magic          uint32
	Version        uint32
	Rank           uint32
	X0, Y0, X1, Y1 uint32
}

func tilePath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("tile-%d.bin", rank))
}

// writeTile saves rank's tile region of g (a full-size grid with only the
// tile filled, as Cluster.Gather returns under LocalRanks).
func writeTile(path string, rank int, t dist.Tile, g *abft.Grid[float32]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	hdr := tileHeader{Magic: tileMagic, Version: 1, Rank: uint32(rank),
		X0: uint32(t.X0), Y0: uint32(t.Y0), X1: uint32(t.X1), Y1: uint32(t.Y1)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		f.Close()
		return err
	}
	for y := t.Y0; y < t.Y1; y++ {
		if err := binary.Write(w, binary.LittleEndian, g.Row(y)[t.X0:t.X1]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readTileInto loads rank k's tile file, validates it against the expected
// geometry, and copies the rows into the global grid.
func readTileInto(path string, k int, want dist.Tile, global *abft.Grid[float32]) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("rank %d wrote no tile: %w", k, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr tileHeader
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("rank %d tile header: %w", k, err)
	}
	if hdr.Magic != tileMagic || hdr.Version != 1 {
		return fmt.Errorf("rank %d tile file %s is not a version-1 stencilrun tile", k, path)
	}
	got := dist.Tile{X0: int(hdr.X0), Y0: int(hdr.Y0), X1: int(hdr.X1), Y1: int(hdr.Y1)}
	if int(hdr.Rank) != k || got != want {
		return fmt.Errorf("rank %d tile file claims rank %d tile %v, want tile %v", k, hdr.Rank, got, want)
	}
	for y := want.Y0; y < want.Y1; y++ {
		if err := binary.Read(r, binary.LittleEndian, global.Row(y)[want.X0:want.X1]); err != nil {
			return fmt.Errorf("rank %d tile row %d: %w", k, y, err)
		}
	}
	return nil
}
