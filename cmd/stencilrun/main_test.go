package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	abft "stencilabft"
)

// base returns the flag defaults, as flag.Parse would leave them with no
// arguments.
func base() config {
	return config{
		nx: 256, ny: 256, iters: 100, kernel: "laplace", bcName: "clamp",
		mode: "online", period: 16, epsilon: 1e-5, seed: 1, rank: -1,
		haloDepth: 1,
	}
}

// TestResolveValidCombinations pins the supported flag shapes and what
// they resolve to.
func TestResolveValidCombinations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*config)
		want plan
	}{
		{"defaults: local online over chan", func(c *config) {},
			plan{scheme: abft.Online, deployment: abft.Local, transport: abft.TransportChan}},
		{"ranks shorthand: chan cluster", func(c *config) { c.ranks = 4 },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 1, ranksY: 4, transport: abft.TransportChan}},
		{"rank grid: chan cluster", func(c *config) { c.rankGrid = "2x3" },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 3, ranksY: 2, transport: abft.TransportChan}},
		{"depth-k ghost zones on a chan cluster", func(c *config) { c.rankGrid = "2x2"; c.haloDepth = 4 },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportChan}},
		{"blocksize implies blocked", func(c *config) { c.blockSize = 32 },
			plan{scheme: abft.Blocked, deployment: abft.Local, transport: abft.TransportChan}},
		{"tcp rank process", func(c *config) { c.rankGrid = "2x2"; c.transport = "tcp"; c.rank = 3; c.rendezvous = "127.0.0.1:9777" },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP}},
		{"tcp rank process with a bind address", func(c *config) {
			c.rankGrid = "2x2"
			c.rank = 1
			c.rendezvous = "10.0.0.5:9777"
			c.bind = "10.0.0.6:0"
		},
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP}},
		{"rank+rendezvous imply tcp", func(c *config) { c.rankGrid = "2x2"; c.rank = 0; c.rendezvous = "127.0.0.1:9777" },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP}},
		{"launch implies tcp parent", func(c *config) { c.rankGrid = "2x2"; c.launch = 4 },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP, launch: true}},
		{"launch forwards profiles and trace", func(c *config) {
			c.rankGrid = "2x2"
			c.launch = 4
			c.cpuProf = "p.out"
			c.memProf = "m.out"
			c.trace = "t.json"
		},
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP, launch: true}},
		{"tcp rank with buddy checkpointing and a coordinator", func(c *config) {
			c.rankGrid = "2x2"
			c.rank = 1
			c.rendezvous = "127.0.0.1:9777"
			c.buddy = 16
			c.control = "127.0.0.1:9900"
		},
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP}},
		{"respawned claimant needs no rendezvous", func(c *config) {
			c.rankGrid = "2x2"
			c.transport = "tcp"
			c.rank = 3
			c.epoch = 2
			c.buddy = 16
			c.control = "127.0.0.1:9900"
		},
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP}},
		{"launch with recovery and a fault drill", func(c *config) {
			c.rankGrid = "2x2"
			c.launch = 4
			c.recover = true
			c.buddy = 8
			c.die = "3@50"
		},
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP,
				launch: true, dieRank: 3, dieIter: 50}},
		{"local run with periodic disk checkpoints", func(c *config) { c.ckptPath = "ck/run"; c.ckptEach = 25 },
			plan{scheme: abft.Online, deployment: abft.Local, transport: abft.TransportChan}},
		{"local run restored from disk", func(c *config) { c.restore = "ck/run" },
			plan{scheme: abft.Online, deployment: abft.Local, transport: abft.TransportChan}},
		{"chaos plan on a chan cluster", func(c *config) { c.ranks = 4; c.chaos = "plan.json" },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 1, ranksY: 4, transport: abft.TransportChan}},
		{"chaos soak on the launch parent", func(c *config) {
			c.rankGrid = "2x2"
			c.launch = 4
			c.chaos = "plan.json"
			c.soak = 3
		},
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP, launch: true}},
		{"tcp rank with buddy and a disk checkpoint dir", func(c *config) {
			c.rankGrid = "2x2"
			c.rank = 1
			c.rendezvous = "127.0.0.1:9777"
			c.buddy = 8
			c.ckptDir = "ck"
		},
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP}},
		{"launch with recovery and the double-death disk fallback", func(c *config) {
			c.rankGrid = "2x2"
			c.launch = 4
			c.recover = true
			c.buddy = 8
			c.ckptDir = "ck"
		},
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP, launch: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mut(&c)
			got, err := c.resolve()
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			if got != tc.want {
				t.Fatalf("resolve = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestResolveRejectsBadCombinations pins the up-front validation of the
// transport flag combinations: every misconfiguration fails before any
// socket or child process exists, with a message naming the fix.
func TestResolveRejectsBadCombinations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*config)
		want string // substring of the error
	}{
		{"tcp without rank/rendezvous/launch",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "tcp" }, "-rank K and -rendezvous"},
		{"tcp without a rank grid",
			func(c *config) { c.transport = "tcp"; c.rank = 0; c.rendezvous = "h:1" }, "-rankgrid"},
		{"tcp rank without rendezvous",
			func(c *config) { c.rankGrid = "2x2"; c.rank = 1 }, "-rendezvous"},
		{"tcp rank out of range",
			func(c *config) { c.rankGrid = "2x2"; c.rank = 4; c.rendezvous = "h:1" }, "outside the 4-rank cluster"},
		{"launch with chan transport",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.transport = "chan" }, "chan transport"},
		{"launch with rank",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.rank = 0; c.rendezvous = "h:1" }, "parent role"},
		{"launch count mismatching the grid",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 3 }, "must match the rank grid"},
		{"launch with metrics",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.metricsAddr = ":0" }, "-metrics"},
		{"launch with tileout",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.tileOut = "t.bin" }, "-tileout"},
		{"rank with explicit chan",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "chan"; c.rank = 1 }, "-rank"},
		{"rendezvous with explicit chan",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "chan"; c.rendezvous = "h:1" }, "-rendezvous"},
		{"tileout without tcp",
			func(c *config) { c.rankGrid = "2x2"; c.tileOut = "t.bin" }, "-tileout"},
		{"bind with explicit chan",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "chan"; c.bind = "10.0.0.5:0" }, "-bind"},
		{"bind with launch",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.bind = "10.0.0.5:0" }, "-bind"},
		{"tcp with a non-online scheme",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.mode = "offline" }, "online scheme only"},
		{"unknown transport",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "carrier-pigeon" }, "unknown transport"},
		{"ranks and rankgrid together",
			func(c *config) { c.ranks = 4; c.rankGrid = "2x2" }, "not both"},
		{"halodepth below one",
			func(c *config) { c.rankGrid = "2x2"; c.haloDepth = 0 }, "at least 1"},
		{"halodepth without a cluster",
			func(c *config) { c.haloDepth = 2 }, "-rankgrid RxC"},
		{"buddy period off the halo-exchange cadence",
			func(c *config) {
				c.rankGrid = "2x2"
				c.launch = 4
				c.haloDepth = 4
				c.buddy = 6
			}, "use -buddy 8"},
		{"malformed rankgrid",
			func(c *config) { c.rankGrid = "2by2" }, "invalid -rankgrid"},
		{"blocksize on offline",
			func(c *config) { c.mode = "offline"; c.blockSize = 32 }, "-blocksize"},
		{"ckptperiod without checkpoint",
			func(c *config) { c.ckptEach = 25 }, "-checkpoint"},
		{"restore with inject",
			func(c *config) { c.restore = "ck/run"; c.inject = true }, "-inject"},
		{"buddy on the chan transport",
			func(c *config) { c.rankGrid = "2x2"; c.buddy = 16 }, "-buddy"},
		{"control without buddy",
			func(c *config) { c.rankGrid = "2x2"; c.rank = 1; c.rendezvous = "h:1"; c.control = "h:2" }, "-buddy"},
		{"recover without launch",
			func(c *config) { c.rankGrid = "2x2"; c.rank = 1; c.rendezvous = "h:1"; c.buddy = 8; c.recover = true }, "-launch"},
		{"recover without buddy",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.recover = true }, "-buddy"},
		{"control on the launch parent",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.buddy = 8; c.control = "h:2" }, "-control"},
		{"epoch without control",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "tcp"; c.rank = 3; c.epoch = 1; c.buddy = 8 }, "-control"},
		{"malformed die",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.recover = true; c.buddy = 8; c.die = "3-50" }, "invalid -die"},
		{"die targeting a rank outside the grid",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.recover = true; c.buddy = 8; c.die = "4@50" }, "outside the 4-rank cluster"},
		{"die on a rank process",
			func(c *config) { c.rankGrid = "2x2"; c.rank = 1; c.rendezvous = "h:1"; c.buddy = 8; c.die = "3@50" }, "-die-at"},
		{"die-at on the launch parent",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.buddy = 8; c.dieAt = 50 }, "-die R@I"},
		{"die-at without buddy",
			func(c *config) { c.rankGrid = "2x2"; c.rank = 1; c.rendezvous = "h:1"; c.dieAt = 50 }, "-buddy"},
		{"disk checkpoint on a tcp rank",
			func(c *config) { c.rankGrid = "2x2"; c.rank = 1; c.rendezvous = "h:1"; c.ckptPath = "ck/run" }, "-buddy"},
		{"metrics with buddy recovery",
			func(c *config) {
				c.rankGrid = "2x2"
				c.rank = 1
				c.rendezvous = "h:1"
				c.buddy = 8
				c.metricsAddr = ":0"
			}, "-metrics"},
		{"chaos on a local run",
			func(c *config) { c.chaos = "plan.json" }, "cluster's transport"},
		{"chaos with inject",
			func(c *config) { c.ranks = 4; c.chaos = "plan.json"; c.inject = true }, "each gate means something"},
		{"soak without chaos",
			func(c *config) { c.ranks = 4; c.soak = 3 }, "-chaos plan.json"},
		{"negative soak",
			func(c *config) { c.ranks = 4; c.chaos = "plan.json"; c.soak = -1 }, "must be positive"},
		{"soak on a tcp rank process",
			func(c *config) {
				c.rankGrid = "2x2"
				c.rank = 1
				c.rendezvous = "h:1"
				c.chaos = "plan.json"
				c.soak = 2
			}, "-launch parent"},
		{"ckptdir on the chan transport",
			func(c *config) { c.ranks = 4; c.ckptDir = "ck" }, "every rank in one process"},
		{"ckptdir without buddy",
			func(c *config) {
				c.rankGrid = "2x2"
				c.rank = 1
				c.rendezvous = "h:1"
				c.ckptDir = "ck"
			}, "set -buddy j"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mut(&c)
			_, err := c.resolve()
			if err == nil {
				t.Fatalf("invalid flag combination accepted: %+v", c)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestChildStatsMalformedLines pins the parent's stats-line parser against
// truncated or corrupt child output: a diagnostic error, never a panic.
func TestChildStatsMalformedLines(t *testing.T) {
	good := []byte("noise\n" + childStatsPrefix + `2 {"Iterations":7}` + "\n")
	st, err := childStats(good, 2)
	if err != nil || st.Iterations != 7 {
		t.Fatalf("good line: %+v, %v", st, err)
	}
	for name, out := range map[string][]byte{
		"no stats line":     []byte("just logs\n"),
		"payload without {": []byte(childStatsPrefix + "2 x\n"),
		"wrong rank":        []byte(childStatsPrefix + `1 {"Iterations":7}` + "\n"),
		"broken JSON":       []byte(childStatsPrefix + "2 {\n"),
		"empty output":      nil,
	} {
		if _, err := childStats(out, 2); err == nil {
			t.Errorf("%s: accepted %q", name, out)
		}
	}
}

// TestDiskCheckpointRoundTrip drives the CLI's disk-checkpoint path end to
// end: checkpoint a run cut off at iteration 16, restore and finish it, and
// require the resumed run's final checkpoint file to be byte-identical to an
// uninterrupted run's — same iteration stamp, same IEEE-754 grid bits.
func TestDiskCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	run := func(mut func(*config)) {
		t.Helper()
		c := base()
		c.nx, c.ny, c.iters = 48, 40, 24
		mut(&c)
		p, err := c.resolve()
		if err != nil {
			t.Fatal(err)
		}
		if err := runProcess(c, p); err != nil {
			t.Fatal(err)
		}
	}
	run(func(c *config) { c.ckptPath = filepath.Join(dir, "part"); c.ckptEach = 8; c.iters = 16 })
	run(func(c *config) { c.restore = filepath.Join(dir, "part"); c.ckptPath = filepath.Join(dir, "resumed") })
	run(func(c *config) { c.ckptPath = filepath.Join(dir, "full") })
	resumed, err := os.ReadFile(filepath.Join(dir, "resumed.a"))
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, "full.a"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, full) {
		t.Fatal("the restored run's final checkpoint differs from the uninterrupted run's")
	}
}

// TestParseDie pins the R@I fault-drill syntax.
func TestParseDie(t *testing.T) {
	r, i, err := parseDie("3@50")
	if err != nil || r != 3 || i != 50 {
		t.Fatalf("parseDie(3@50) = %d, %d, %v", r, i, err)
	}
	for _, bad := range []string{"", "3", "@", "3@", "@50", "a@b", "3@50@7"} {
		if _, _, err := parseDie(bad); err == nil {
			t.Errorf("parseDie(%q) accepted", bad)
		}
	}
}

// TestLastChildGen pins the CHILDGEN progress-line scanner the death
// diagnostics rely on: newest generation for the right rank with its
// healing counters, noise, malformed and legacy two-field lines handled.
func TestLastChildGen(t *testing.T) {
	out := []byte("noise\n" +
		childGenPrefix + "3 8 0 0\n" +
		childGenPrefix + "2 40 9 9\n" + // another rank's line
		childGenPrefix + "3 16 2 11\n" +
		childGenPrefix + "bogus line\n" +
		childGenPrefix + "3 x\n")
	gen, reconnects, resends, ok := lastChildGen(out, 3)
	if !ok || gen != 16 || reconnects != 2 || resends != 11 {
		t.Fatalf("lastChildGen = %d, %d, %d, %v (want 16, 2, 11, true)", gen, reconnects, resends, ok)
	}
	if _, _, _, ok := lastChildGen(out, 0); ok {
		t.Fatal("rank 0 never reported a checkpoint, but one was found")
	}
	if _, _, _, ok := lastChildGen(nil, 3); ok {
		t.Fatal("empty output produced a generation")
	}
	// A two-field line from an older build parses with zero counters.
	gen, reconnects, resends, ok = lastChildGen([]byte(childGenPrefix+"5 32\n"), 5)
	if !ok || gen != 32 || reconnects != 0 || resends != 0 {
		t.Fatalf("legacy line: %d, %d, %d, %v (want 32, 0, 0, true)", gen, reconnects, resends, ok)
	}
}

// TestDeathReport pins the launcher's fail-stop diagnostic: it names the
// rank, the exit cause, the last checkpointed generation, and any transport
// healing the child had done before it died.
func TestDeathReport(t *testing.T) {
	out := []byte(childGenPrefix + "3 24 0 0\n")
	got := deathReport(3, 0, fmt.Errorf("signal: killed"), out)
	for _, want := range []string{"rank 3", "signal: killed", "generation 24"} {
		if !strings.Contains(got, want) {
			t.Errorf("report %q does not mention %q", got, want)
		}
	}
	if strings.Contains(got, "reconnects") {
		t.Errorf("report %q mentions reconnects for a child that never healed", got)
	}
	got = deathReport(1, 2, fmt.Errorf("exit status 1"), nil)
	for _, want := range []string{"rank 1", "epoch 2", "exit status 1", "no buddy checkpoint"} {
		if !strings.Contains(got, want) {
			t.Errorf("report %q does not mention %q", got, want)
		}
	}
	got = deathReport(2, 1, fmt.Errorf("signal: killed"), []byte(childGenPrefix+"2 40 3 17\n"))
	for _, want := range []string{"generation 40", "3 reconnects", "17 resent frames"} {
		if !strings.Contains(got, want) {
			t.Errorf("report %q does not mention %q", got, want)
		}
	}
}

// TestResolveRejectsNegativeLaunch pins the negative -launch rejection.
func TestResolveRejectsNegativeLaunch(t *testing.T) {
	c := base()
	c.rankGrid = "2x2"
	c.launch = -4
	if _, err := c.resolve(); err == nil || !strings.Contains(err.Error(), "must be positive") {
		t.Fatalf("negative -launch: %v", err)
	}
}
