package main

import (
	"strings"
	"testing"

	abft "stencilabft"
)

// base returns the flag defaults, as flag.Parse would leave them with no
// arguments.
func base() config {
	return config{
		nx: 256, ny: 256, iters: 100, kernel: "laplace", bcName: "clamp",
		mode: "online", period: 16, epsilon: 1e-5, seed: 1, rank: -1,
	}
}

// TestResolveValidCombinations pins the supported flag shapes and what
// they resolve to.
func TestResolveValidCombinations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*config)
		want plan
	}{
		{"defaults: local online over chan", func(c *config) {},
			plan{scheme: abft.Online, deployment: abft.Local, transport: abft.TransportChan}},
		{"ranks shorthand: chan cluster", func(c *config) { c.ranks = 4 },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 1, ranksY: 4, transport: abft.TransportChan}},
		{"rank grid: chan cluster", func(c *config) { c.rankGrid = "2x3" },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 3, ranksY: 2, transport: abft.TransportChan}},
		{"blocksize implies blocked", func(c *config) { c.blockSize = 32 },
			plan{scheme: abft.Blocked, deployment: abft.Local, transport: abft.TransportChan}},
		{"tcp rank process", func(c *config) { c.rankGrid = "2x2"; c.transport = "tcp"; c.rank = 3; c.rendezvous = "127.0.0.1:9777" },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP}},
		{"tcp rank process with a bind address", func(c *config) {
			c.rankGrid = "2x2"
			c.rank = 1
			c.rendezvous = "10.0.0.5:9777"
			c.bind = "10.0.0.6:0"
		},
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP}},
		{"rank+rendezvous imply tcp", func(c *config) { c.rankGrid = "2x2"; c.rank = 0; c.rendezvous = "127.0.0.1:9777" },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP}},
		{"launch implies tcp parent", func(c *config) { c.rankGrid = "2x2"; c.launch = 4 },
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP, launch: true}},
		{"launch forwards profiles and trace", func(c *config) {
			c.rankGrid = "2x2"
			c.launch = 4
			c.cpuProf = "p.out"
			c.memProf = "m.out"
			c.trace = "t.json"
		},
			plan{scheme: abft.Online, deployment: abft.Clustered, ranksX: 2, ranksY: 2, transport: abft.TransportTCP, launch: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mut(&c)
			got, err := c.resolve()
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			if got != tc.want {
				t.Fatalf("resolve = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestResolveRejectsBadCombinations pins the up-front validation of the
// transport flag combinations: every misconfiguration fails before any
// socket or child process exists, with a message naming the fix.
func TestResolveRejectsBadCombinations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*config)
		want string // substring of the error
	}{
		{"tcp without rank/rendezvous/launch",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "tcp" }, "-rank K and -rendezvous"},
		{"tcp without a rank grid",
			func(c *config) { c.transport = "tcp"; c.rank = 0; c.rendezvous = "h:1" }, "-rankgrid"},
		{"tcp rank without rendezvous",
			func(c *config) { c.rankGrid = "2x2"; c.rank = 1 }, "-rendezvous"},
		{"tcp rank out of range",
			func(c *config) { c.rankGrid = "2x2"; c.rank = 4; c.rendezvous = "h:1" }, "outside the 4-rank cluster"},
		{"launch with chan transport",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.transport = "chan" }, "chan transport"},
		{"launch with rank",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.rank = 0; c.rendezvous = "h:1" }, "parent role"},
		{"launch count mismatching the grid",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 3 }, "must match the rank grid"},
		{"launch with metrics",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.metricsAddr = ":0" }, "-metrics"},
		{"launch with tileout",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.tileOut = "t.bin" }, "-tileout"},
		{"rank with explicit chan",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "chan"; c.rank = 1 }, "-rank"},
		{"rendezvous with explicit chan",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "chan"; c.rendezvous = "h:1" }, "-rendezvous"},
		{"tileout without tcp",
			func(c *config) { c.rankGrid = "2x2"; c.tileOut = "t.bin" }, "-tileout"},
		{"bind with explicit chan",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "chan"; c.bind = "10.0.0.5:0" }, "-bind"},
		{"bind with launch",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.bind = "10.0.0.5:0" }, "-bind"},
		{"tcp with a non-online scheme",
			func(c *config) { c.rankGrid = "2x2"; c.launch = 4; c.mode = "offline" }, "online scheme only"},
		{"unknown transport",
			func(c *config) { c.rankGrid = "2x2"; c.transport = "carrier-pigeon" }, "unknown transport"},
		{"ranks and rankgrid together",
			func(c *config) { c.ranks = 4; c.rankGrid = "2x2" }, "not both"},
		{"malformed rankgrid",
			func(c *config) { c.rankGrid = "2by2" }, "invalid -rankgrid"},
		{"blocksize on offline",
			func(c *config) { c.mode = "offline"; c.blockSize = 32 }, "-blocksize"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mut(&c)
			_, err := c.resolve()
			if err == nil {
				t.Fatalf("invalid flag combination accepted: %+v", c)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestChildStatsMalformedLines pins the parent's stats-line parser against
// truncated or corrupt child output: a diagnostic error, never a panic.
func TestChildStatsMalformedLines(t *testing.T) {
	good := []byte("noise\n" + childStatsPrefix + `2 {"Iterations":7}` + "\n")
	st, err := childStats(good, 2)
	if err != nil || st.Iterations != 7 {
		t.Fatalf("good line: %+v, %v", st, err)
	}
	for name, out := range map[string][]byte{
		"no stats line":     []byte("just logs\n"),
		"payload without {": []byte(childStatsPrefix + "2 x\n"),
		"wrong rank":        []byte(childStatsPrefix + `1 {"Iterations":7}` + "\n"),
		"broken JSON":       []byte(childStatsPrefix + "2 {\n"),
		"empty output":      nil,
	} {
		if _, err := childStats(out, 2); err == nil {
			t.Errorf("%s: accepted %q", name, out)
		}
	}
}

// TestResolveRejectsNegativeLaunch pins the negative -launch rejection.
func TestResolveRejectsNegativeLaunch(t *testing.T) {
	c := base()
	c.rankGrid = "2x2"
	c.launch = -4
	if _, err := c.resolve(); err == nil || !strings.Contains(err.Error(), "must be positive") {
		t.Fatalf("negative -launch: %v", err)
	}
}
