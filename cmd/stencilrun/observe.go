package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"

	abft "stencilabft"
	"stencilabft/internal/telemetry"
)

// Observability sinks: the -trace file export and the -metrics live
// endpoint. Both read the same telemetry collector the protected run
// records into; the endpoint additionally snapshots the transport counters
// when the protector is a cluster.

// transportMetricser is the seam through which the live endpoint reaches a
// cluster's per-edge transport counters; both cluster deployments satisfy
// it, local protectors simply don't.
type transportMetricser interface {
	TransportMetrics() (telemetry.TransportMetrics, bool)
}

// serveMetrics binds addr and serves the observability endpoints in the
// background for the rest of the process's life: Prometheus text at
// /metrics, expvar JSON at /debug/vars, and the pprof index under
// /debug/pprof/. The phase accumulators are atomic, so scraping mid-run is
// safe and reflects live progress.
func serveMetrics(addr string, tel *abft.Telemetry, prot abft.Protector[float32]) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-metrics %s: %w", addr, err)
	}
	tm, _ := prot.(transportMetricser)

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := tel.WritePrometheus(w); err != nil {
			return
		}
		if tm != nil {
			if m, ok := tm.TransportMetrics(); ok {
				m.WritePrometheus(w)
			}
		}
	})

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("metrics: serving Prometheus (/metrics), expvar (/debug/vars) and pprof (/debug/pprof/) on http://%s\n", ln.Addr())
	return ln, nil
}

// writeTraceFile exports the collector's span timeline as a Chrome
// trace-event JSON file.
func writeTraceFile(path string, tel *abft.Telemetry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := abft.WriteTrace(f, tel); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: wrote %s\n", path)
	return nil
}
