// Command stencilserve is the multi-tenant simulation service: POST a
// wire-form Spec (see API.md) and an iteration count to /v1/jobs, stream
// per-iteration Stats over SSE, and fetch the finished domain — scheduled
// over a persistent pool of worker processes with per-tenant concurrency
// quotas and a content-addressed result cache.
//
// The server re-execs its own binary with -worker to populate the pool;
// each worker speaks the line-JSON protocol on stdin/stdout and hosts one
// job at a time. Cluster jobs whose rank count fits the pool are fanned out
// one TCP rank per worker — the same deployment shape as stencilrun
// -launch, behind an HTTP API.
//
// Usage:
//
//	stencilserve -addr :8080 -workers 2 -quota 4
//
// Endpoints (see API.md for the wire contract):
//
//	POST /v1/jobs                submit {"spec": WireSpec, "iters": N}
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/events    SSE stream: stats per iteration, then done
//	GET  /v1/jobs/{id}/result    final grid + merged stats
//	POST /v1/grids               upload a grid, reference it as {"upload": id}
//	GET  /v1/healthz, /metrics   liveness and Prometheus text
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stencilabft/internal/serve"
)

func main() {
	var (
		worker  = flag.Bool("worker", false, "run as a pool worker on stdin/stdout (internal)")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 2, "worker process pool size")
		quota   = flag.Int("quota", 4, "max queued+running jobs per tenant")
		queue   = flag.Int("queue", 64, "global job backlog bound")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-job deadline before its workers are killed")
		cache   = flag.Int("cache", 128, "result cache entries")
		fanout  = flag.Bool("fanout", true, "spread cluster jobs one tcp rank per worker when they fit")
	)
	flag.Parse()

	if *worker {
		if err := serve.WorkerMain(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("stencilserve: cannot locate own binary for worker re-exec: %v", err)
	}
	srv, err := serve.New(serve.Config{
		Workers:        *workers,
		Start:          serve.ProcessWorkers(exe, nil, "-worker"),
		QuotaPerTenant: *quota,
		QueueDepth:     *queue,
		JobTimeout:     *timeout,
		CacheEntries:   *cache,
		DisableFanOut:  !*fanout,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	log.Printf("stencilserve listening on %s (%d workers, quota %d/tenant)", ln.Addr(), *workers, *quota)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("stencilserve: %v — draining", sig)
	case err := <-done:
		log.Fatalf("stencilserve: serve failed: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("stencilserve: http shutdown: %v", err)
	}
	srv.Close()
	fmt.Println("shutdown complete")
}
