// Command abftcampaign regenerates the tables and figures of the paper's
// evaluation section (Section 5) as text tables.
//
// Usage:
//
//	abftcampaign -experiment all -scale 0.25
//	abftcampaign -experiment fig10 -reps 50
//
// Experiments: table1, fig8, fig9, fig10, fig11, ablation, all.
//
// -scale shrinks the paper's tile sizes, iteration counts and repetition
// counts proportionally (1.0 = the paper's exact parameters; the default
// 0.25 finishes in minutes on a laptop). The *shape* of the results —
// which method wins, the <8% overhead bound, the offline slowdown under
// faults, the bit-position detectability pattern — is preserved at any
// scale; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stencilabft/internal/campaign"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1|fig8|fig9|fig10|fig11|ablation|all")
		scale      = flag.Float64("scale", 0.25, "scale factor vs. the paper's parameters (1.0 = paper scale)")
		reps       = flag.Int("reps", 0, "override repetition count (0 = scaled paper value)")
		iters      = flag.Int("iters", 0, "override iteration count (0 = scaled paper value)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		epsilon    = flag.Float64("epsilon", 1e-5, "detection threshold")
		seed       = flag.Int64("seed", 1, "base seed for inputs and fault plans")
	)
	flag.Parse()

	cfgs := campaign.PaperConfigs(*scale)
	for i := range cfgs {
		if *reps > 0 {
			cfgs[i].Reps = *reps
		}
		if *iters > 0 {
			cfgs[i].Iterations = *iters
		}
		cfgs[i].Workers = *workers
		cfgs[i].Epsilon = float32(*epsilon)
		cfgs[i].Seed += *seed
	}
	small := cfgs[0]

	run := func(name string, f func() error) {
		fmt.Printf("--- %s ---\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "abftcampaign: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	ran := false
	if want("table1") {
		ran = true
		campaign.Table1(cfgs, os.Stdout)
		fmt.Println()
	}
	if want("fig8") {
		ran = true
		run("Figure 8: execution time", func() error { return campaign.Fig8(cfgs, os.Stdout) })
	}
	if want("fig9") {
		ran = true
		run("Figure 9: arithmetic error", func() error { return campaign.Fig9(cfgs, os.Stdout) })
	}
	if want("fig10") {
		ran = true
		run("Figure 10: error vs bit position", func() error {
			methods := []campaign.Method{campaign.NoABFT, campaign.OnlinePaperEq10, campaign.Online, campaign.Offline}
			return campaign.Fig10(small, methods, os.Stdout)
		})
	}
	if want("fig11") {
		ran = true
		run("Figure 11: offline detection period", func() error {
			return campaign.Fig11(small, campaign.DefaultPeriods(), os.Stdout)
		})
	}
	if want("ablation") {
		ran = true
		run("Ablations", func() error { return campaign.Ablations(small, os.Stdout) })
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "abftcampaign: unknown experiment %q (want %s)\n",
			*experiment, strings.Join([]string{"table1", "fig8", "fig9", "fig10", "fig11", "ablation", "all"}, "|"))
		os.Exit(2)
	}
}
