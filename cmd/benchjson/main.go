// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark result — the format the perf trajectory
// files (BENCH_*.json) record and the CI bench step uploads as an artifact.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem . | benchjson -out BENCH_pr3.json
//	benchjson -in bench.txt -out BENCH_pr3.json
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored, so piping raw `go test` output works directly. The goos/goarch/
// pkg/cpu context lines are recorded once at the top level so a trajectory
// point says what machine produced it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
//
//	BenchmarkSweepKernels/star5/n512/fast-4   100   912345 ns/op   0 B/op   0 allocs/op
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// File is the trajectory-point document: the machine context plus every
// parsed result.
type File struct {
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	var (
		in  = flag.String("in", "", "input file (default: stdin)")
		out = flag.String("out", "", "output file (default: stdout)")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}

	doc, err := Parse(r)
	if err != nil {
		fail(err)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
}

// Parse reads `go test -bench` output and extracts the context header and
// every benchmark result line.
func Parse(r io.Reader) (*File, error) {
	doc := &File{Context: map[string]string{}, Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				doc.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		doc.Results = append(doc.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark result lines found")
	}
	return doc, nil
}

// parseLine decodes one result line: name, iteration count, then unit-
// tagged value pairs (ns/op, B/op, allocs/op; others are ignored).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			ns, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, false
			}
			res.NsPerOp = ns
			seenNs = true
		case "B/op":
			if b, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.BytesPerOp = &b
			}
		case "allocs/op":
			if a, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.AllocsPerOp = &a
			}
		}
	}
	return res, seenNs
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
