package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: stencilabft
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepKernels/float32/star5/n512/generic-4         	     100	   2201000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSweepKernels/float32/star5/n512/fast-4            	     100	    912345 ns/op	       0 B/op	       0 allocs/op
BenchmarkOnlineStep2D/n512/online-4                        	     100	   1230058 ns/op
PASS
ok  	stencilabft	2.601s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Fatalf("context not captured: %v", doc.Context)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(doc.Results))
	}
	r := doc.Results[1]
	if r.Name != "BenchmarkSweepKernels/float32/star5/n512/fast-4" || r.Iterations != 100 || r.NsPerOp != 912345 {
		t.Fatalf("bad result: %+v", r)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Fatalf("allocs/op not parsed: %+v", r)
	}
	// A line without -benchmem columns still parses, with the pointers nil.
	if doc.Results[2].BytesPerOp != nil || doc.Results[2].AllocsPerOp != nil {
		t.Fatalf("memless line grew mem fields: %+v", doc.Results[2])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}
