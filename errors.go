package stencilabft

import (
	"errors"

	"stencilabft/internal/dist"
	"stencilabft/internal/errs"
	"stencilabft/internal/stencil"
)

// Typed sentinels of the validation surface. Every error Build and the
// Parse* helpers return for a malformed or unsupported Spec matches
// ErrInvalidSpec under errors.Is; the narrower sentinels classify the
// specific complaint. Message text stays the caller-actionable prose it has
// always been — the sentinels add classification, not wording, so an HTTP
// layer can map client errors to 400 without string matching.
var (
	// ErrInvalidSpec is the umbrella class: the Spec (or wire form) as
	// declared cannot be built. Every narrower sentinel below implies it.
	ErrInvalidSpec = errors.New("stencilabft: invalid spec")
	// ErrUnknownScheme classifies an unrecognised Scheme name.
	ErrUnknownScheme = errors.New("stencilabft: unknown scheme")
	// ErrUnknownDeployment classifies an unrecognised Deployment name.
	ErrUnknownDeployment = errors.New("stencilabft: unknown deployment")
	// ErrUnknownTopology classifies an unrecognised Topology name.
	ErrUnknownTopology = errors.New("stencilabft: unknown topology")
	// ErrUnknownTransport classifies an unrecognised TransportKind name.
	ErrUnknownTransport = errors.New("stencilabft: unknown transport")
	// ErrUnsupportedCombination classifies a scheme × deployment cell with
	// no registered builder (see BuildKeys).
	ErrUnsupportedCombination = errors.New("stencilabft: unsupported scheme/deployment combination")

	// ErrThinTile classifies a cluster decomposition whose tiles are too
	// thin for the stencil's halo — re-exported from the dist package,
	// which owns the geometry check.
	ErrThinTile = dist.ErrThinTile
	// ErrInvalidOp classifies an operator that fails validation against
	// its domain (bad stencil, invalid boundary condition, radius exceeding
	// the domain, mis-shaped constant field) — re-exported from the stencil
	// package. Unlike the spec sentinels it does not imply ErrInvalidSpec:
	// operator validation also runs on paths that never saw a Spec.
	ErrInvalidOp = stencil.ErrInvalidOp

	// ErrBadWireSpec is the umbrella class of the wire surface: a WireSpec
	// JSON document that cannot be parsed or resolved. It implies
	// ErrInvalidSpec (a bad wire spec is an invalid spec), so HTTP layers
	// can map on the umbrella alone.
	ErrBadWireSpec = errors.New("stencilabft: malformed wire spec")
	// ErrUnknownStencil classifies a WireStencil naming no registry entry.
	ErrUnknownStencil = errors.New("stencilabft: unknown stencil")
	// ErrUnknownGenerator classifies a WireGrid naming no grid generator.
	ErrUnknownGenerator = errors.New("stencilabft: unknown grid generator")
	// ErrUnresolvedUpload classifies a WireGrid referencing an upload id
	// that has not been resolved to inline data — the service layer splices
	// uploads in before SpecFromWire runs.
	ErrUnresolvedUpload = errors.New("stencilabft: unresolved grid upload reference")

	// ErrNotSerializable reports a Spec that cannot round-trip through the
	// wire form because it carries process-local state (function pointers,
	// worker pools, transport endpoints). It does NOT imply ErrInvalidSpec:
	// such specs build and run fine in-process, they just cannot travel.
	ErrNotSerializable = errors.New("stencilabft: spec is not wire-serializable")
)

// specErrorf builds a Spec-validation error: errors.Is-true for
// ErrInvalidSpec plus any extra kinds, with exactly the formatted message.
func specErrorf(format string, args ...any) error {
	return errs.Tagf([]error{ErrInvalidSpec}, format, args...)
}

// kindErrorf tags a formatted error with kind and the ErrInvalidSpec
// umbrella — the shape of the Parse* helpers' unknown-name errors.
func kindErrorf(kind error, format string, args ...any) error {
	return errs.Tagf([]error{kind, ErrInvalidSpec}, format, args...)
}

// wireErrorf builds a wire-surface error: errors.Is-true for kind (when
// non-nil), ErrBadWireSpec and ErrInvalidSpec.
func wireErrorf(kind error, format string, args ...any) error {
	kinds := []error{ErrBadWireSpec, ErrInvalidSpec}
	if kind != nil {
		kinds = append([]error{kind}, kinds...)
	}
	return errs.Tagf(kinds, format, args...)
}

// notSerializablef builds a Spec.MarshalJSON refusal naming the offending
// field with an actionable remedy.
func notSerializablef(format string, args ...any) error {
	return errs.Tagf([]error{ErrNotSerializable}, format, args...)
}
