package stencilabft

import (
	"io"
	"net"
	"time"

	"stencilabft/internal/blocks"
	"stencilabft/internal/checksum"
	"stencilabft/internal/core"
	"stencilabft/internal/dist"
	"stencilabft/internal/stencil"
	"stencilabft/internal/telemetry"
)

// Scheme selects the protection method — the rows of the paper's
// evaluation matrix.
type Scheme string

// Protection schemes.
const (
	// None is the unprotected baseline runner.
	None Scheme = "none"
	// Online verifies after every sweep and corrects on the fly
	// (Section 3): lowest time-to-detection, no checkpoint memory, a
	// small floating-point residual after repair.
	Online Scheme = "online"
	// Offline verifies every Period sweeps and recovers by rollback to an
	// in-memory checkpoint and recomputation (Section 4): the error is
	// erased exactly, at the cost of checkpoint memory and a
	// recomputation spike.
	Offline Scheme = "offline"
	// Blocked applies the online scheme per tile of a 2-D domain
	// (Section 3.4): each block owns its checksums, keeping magnitudes —
	// and with them the floating-point detection floor — low.
	Blocked Scheme = "blocked"
)

// ParseScheme converts a CLI-style mode name into a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch Scheme(name) {
	case None, Online, Offline, Blocked:
		return Scheme(name), nil
	default:
		return "", kindErrorf(ErrUnknownScheme, "stencilabft: unknown scheme %q (want none|online|offline|blocked)", name)
	}
}

// Deployment selects where the protected computation runs.
type Deployment string

// Deployments.
const (
	// Local runs in-process on one domain (optionally over a worker Pool).
	Local Deployment = "local"
	// Clustered decomposes the domain over simulated ranks exchanging halo
	// strips through the Transport seam, each rank running the online
	// scheme independently — the paper's distributed-memory setting. The
	// decomposition shape is chosen by Topology: a Cartesian rank grid
	// (2-D domains) or z-layer slabs (3-D domains).
	Clustered Deployment = "cluster"
)

// ParseDeployment converts a CLI-style deployment name into a Deployment.
func ParseDeployment(name string) (Deployment, error) {
	switch Deployment(name) {
	case Local, Clustered:
		return Deployment(name), nil
	default:
		return "", kindErrorf(ErrUnknownDeployment, "stencilabft: unknown deployment %q (want local|cluster)", name)
	}
}

// Topology selects how a Clustered deployment decomposes its domain over
// the ranks — the shape knob of the topology-neutral decomposition layer.
type Topology string

// Topologies.
const (
	// TopoGrid decomposes a 2-D domain over a RanksX-by-RanksY Cartesian
	// rank grid (the default for 2-D clustered runs). The historical row
	// bands are its RanksX == 1 column; production stencil codes prefer
	// squarer grids for their lower surface-to-volume ratio.
	TopoGrid Topology = "grid"
	// TopoBands decomposes a 2-D domain into horizontal row bands — an
	// explicit alias for the Nx1 grid, kept because it is the paper's
	// presentation of the distributed setting.
	TopoBands Topology = "bands"
	// TopoLayers decomposes a 3-D domain into z-layer slabs of Ranks ranks
	// (the default, and only, topology for 3-D clustered runs).
	TopoLayers Topology = "layers"
)

// ParseTopology converts a CLI-style topology name into a Topology.
func ParseTopology(name string) (Topology, error) {
	switch Topology(name) {
	case TopoGrid, TopoBands, TopoLayers:
		return Topology(name), nil
	default:
		return "", kindErrorf(ErrUnknownTopology, "stencilabft: unknown topology %q (want grid|bands|layers)", name)
	}
}

// TransportKind names a Clustered deployment's communication backend — the
// CLI-facing selector behind Spec.Transport.
type TransportKind string

// Transport backends.
const (
	// TransportChan is the default in-process backend: ranks are
	// goroutines wired with paired channels. One process, zero sockets.
	TransportChan TransportKind = "chan"
	// TransportTCP is the socket backend: each rank is hosted by a real OS
	// process (Spec.Rank names the one this process runs) and halo strips,
	// barrier tokens and the bootstrap travel over loopback or LAN TCP
	// connections meeting at Spec.Rendezvous — the deployment the paper's
	// distributed-memory cost model assumes.
	TransportTCP TransportKind = "tcp"
)

// ParseTransport converts a CLI-style transport name into a TransportKind.
func ParseTransport(name string) (TransportKind, error) {
	switch TransportKind(name) {
	case TransportChan, TransportTCP:
		return TransportKind(name), nil
	default:
		return "", kindErrorf(ErrUnknownTransport, "stencilabft: unknown transport %q (want chan|tcp)", name)
	}
}

// Spec declares a protected stencil run: which scheme, where it runs, the
// operator and initial domain, and every tunable the schemes share. It is
// the single input of Build; the zero values of Scheme and Deployment mean
// None and Local, and every knob left zero keeps the paper's defaults
// (epsilon 1e-5, residual pairing, Δ=16, sequential execution, channel
// transport).
//
// Scheme-scoped tunables (Detector, Period, Recovery,
// PaperExactCorrection) are deliberately ignored by schemes that do not
// use them, so one Spec can sweep Scheme across a campaign while holding
// every other knob fixed — the pattern the paper's evaluation harness
// relies on. Deployment-mismatched knobs, by contrast, are hard Build
// errors (Topology, Ranks/RanksX/RanksY or Transport on a Local run,
// Period/Recovery/PaperExactCorrection or BlockX/BlockY on a Clustered
// one): there is no seam for them, and silently dropping them would run a
// different experiment than the spec declares.
type Spec[T Float] struct {
	Scheme     Scheme
	Deployment Deployment

	// Exactly one dimensionality must be set: Op2D with Init, or Op3D
	// with Init3D. The initial grid is copied; the caller's grid is not
	// retained.
	Op2D   *Op2D[T]
	Init   *Grid[T]
	Op3D   *Op3D[T]
	Init3D *Grid3D[T]

	// Detector compares direct against interpolated checksums; the zero
	// value uses the paper's epsilon 1e-5 with an absolute floor of 1.
	Detector Detector[T]
	// PairPolicy selects multi-error pairing (default PairByResidual).
	PairPolicy PairPolicy
	// Pool partitions sweeps over workers; nil runs sequentially.
	Pool *Pool
	// Period is the offline detection/checkpoint period Δ (default 16).
	Period int
	// Recovery selects the offline repair strategy (FullRollback or
	// ConeRecovery). Offline 2-D only.
	Recovery RecoveryMode
	// Topology selects the Clustered decomposition shape; the zero value
	// resolves to TopoGrid for 2-D domains and TopoLayers for 3-D ones.
	Topology Topology
	// Ranks is the Nx1 shorthand of a Clustered deployment's rank count:
	// for a 2-D domain it declares Ranks row bands (a Ranks-by-1 grid),
	// for a 3-D domain the number of z-layer slabs. Mutually exclusive
	// with RanksX/RanksY.
	Ranks int
	// RanksX, RanksY shape the 2-D Cartesian rank grid of a Clustered
	// deployment: RanksX columns (splitting the domain's x axis) by RanksY
	// rows (splitting y). Set both, or use the Ranks shorthand instead.
	RanksX, RanksY int
	// HaloDepth selects depth-k ghost zones for a Clustered 2-D grid
	// deployment: halo strips k·radius wide exchanged once every k
	// iterations, with the ranks redundantly recomputing shrinking
	// boundary shells in between — the communication-avoiding trade of
	// the ghost-zone literature. 0 and 1 both mean the classic
	// exchange-every-iteration schedule; fault-free results are
	// bit-identical at every depth. Checkpoint periods must be multiples
	// of HaloDepth so restores land on exchange boundaries.
	HaloDepth int
	// BlockX, BlockY set the nominal tile size of the Blocked scheme
	// (required ≥ 1; edge tiles may differ).
	BlockX, BlockY int

	// Inject schedules planned bit-flips in domain coordinates; Step and
	// Run apply them at the matching iterations. Under a Clustered
	// deployment each injection is routed to the rank owning its tile (or
	// z-layer slab).
	Inject *Plan
	// InjectSource plugs a custom per-iteration fault hook instead of a
	// declarative plan (Local deployments only — a Clustered run needs
	// routable coordinates, use Inject). Takes precedence over Inject.
	InjectSource InjectSource[T]

	// Transport selects a Clustered deployment's communication backend by
	// name: TransportChan (the default — simulated ranks as goroutines) or
	// TransportTCP (each rank a real OS process; requires Rank and
	// Rendezvous, 2-D grid topologies only).
	Transport TransportKind
	// Rank is the single rank of the grid this process hosts under
	// TransportTCP; the other ranks live in peer processes built from the
	// same Spec with their own Rank. Grid, Gather and Stats then cover
	// this rank's tile only.
	Rank int
	// LocalRanks widens a TransportTCP process's hosting beyond the single
	// Rank — the seam fail-stop recovery uses when a survivor adopts a dead
	// rank's tile. When set it must contain Rank; empty means {Rank}.
	LocalRanks []int
	// Rendezvous is the host:port the TCP cluster's processes meet at to
	// exchange data-listener addresses. The process with Rank 0 binds and
	// serves it; the others dial it with retry.
	Rendezvous string
	// Bind is the address this process's TCP data listener binds and
	// advertises (default "127.0.0.1:0" — loopback clusters). For a
	// multi-host cluster bind the routable interface the peers can dial,
	// e.g. "10.0.0.5:0": the listener's resolved address is what gets
	// published at the rendezvous.
	Bind string
	// NewTransport plugs a custom communication backend (e.g. a tracing or
	// delaying wrapper); it takes precedence over Transport, which must
	// then be left empty. It receives the rank-grid shape (columns × rows;
	// a 3-D layer cluster passes its slab chain as 1 × Ranks) and whether
	// periodic boundaries close the grid into a torus. See dist.Transport.
	NewTransport func(ranksX, ranksY int, ring bool) Transport[T]
	// WrapTransport layers a wrapper over whichever backend the cluster
	// builds — tracing, delaying, or chaos fault injection — without
	// replacing the backend itself. It composes with Transport and
	// NewTransport alike. Clustered deployments only.
	WrapTransport func(tr Transport[T], ranksX, ranksY int, ring bool) Transport[T]
	// RecvTimeout bounds each blocking halo/checkpoint receive so a stalled
	// or dead sibling rank surfaces as a classified fault instead of a
	// hang: it sets the channel backend's receive timeout and the tcp
	// backend's I/O deadline (TCPConfig.IOTimeout). Zero keeps the
	// backend's default (the channel backend then waits forever, the tcp
	// backend applies its 2-minute deadline). Clustered deployments only;
	// ignored when NewTransport supplies a custom backend.
	RecvTimeout time.Duration
	// DeathDeadline bounds the tcp transport's transient-fault healing:
	// how long a broken edge connection may reconnect-and-replay before the
	// peer is declared dead (TCPConfig.DeathDeadline; zero keeps the
	// 15-second default, negative disables healing). TransportTCP only.
	DeathDeadline time.Duration
	// WrapConn hooks every outbound tcp data connection as it is
	// established — bootstrap dials and healing reconnects alike — the
	// seam wire-level chaos injection rides (TCPConfig.WrapConn).
	// TransportTCP only.
	WrapConn func(conn net.Conn, from, to int, d Dir) net.Conn

	// DropBoundaryTerms reproduces the paper's simplified listings
	// (ablation A1); leave false for exact interpolation.
	DropBoundaryTerms bool
	// PaperExactCorrection uses the paper's literal Equation (10)
	// evaluation (Section 5.3's overflow-scale caveat); the default is
	// the numerically stable equivalent.
	PaperExactCorrection bool

	// AfterStep, when non-nil, runs on each rank's goroutine after its
	// sweep completes and before the iteration barrier — the seam buddy
	// checkpointing (internal/resilience) hangs off, so checkpoint traffic
	// overlaps the barrier wait. Clustered deployments only.
	AfterStep func(rank, iter int)

	// Telemetry, when non-nil, records per-rank phase timings and span
	// timelines (see NewTelemetry). A Clustered deployment registers one
	// Recorder per rank; Local protectors record as rank 0. The per-rank
	// breakdown lands on Stats.Timing (RankStats carries each rank's own),
	// the span timeline exports as a Chrome trace via WriteTrace. Nil
	// disables telemetry entirely — the hot path then pays only nil checks.
	Telemetry *Telemetry
}

// withDefaults returns a copy with the zero Scheme and Deployment resolved.
func (s Spec[T]) withDefaults() Spec[T] {
	if s.Scheme == "" {
		s.Scheme = None
	}
	if s.Deployment == "" {
		s.Deployment = Local
	}
	return s
}

// is3D reports whether the spec declares a 3-D run.
func (s Spec[T]) is3D() bool { return s.Op3D != nil || s.Init3D != nil }

// validate rejects malformed and unsupported specs with a caller-actionable
// error. It assumes withDefaults has run.
func (s Spec[T]) validate() error {
	if _, err := ParseScheme(string(s.Scheme)); err != nil {
		return err
	}
	if _, err := ParseDeployment(string(s.Deployment)); err != nil {
		return err
	}
	has2D := s.Op2D != nil || s.Init != nil
	has3D := s.is3D()
	if has2D && has3D {
		return specErrorf("stencilabft: spec sets both 2-D and 3-D fields; choose Op2D/Init or Op3D/Init3D")
	}
	if !has2D && !has3D {
		return specErrorf("stencilabft: spec needs an operator and an initial grid (Op2D/Init or Op3D/Init3D)")
	}
	if has2D && (s.Op2D == nil || s.Init == nil) {
		return specErrorf("stencilabft: 2-D spec needs both Op2D and Init")
	}
	if has3D && (s.Op3D == nil || s.Init3D == nil) {
		return specErrorf("stencilabft: 3-D spec needs both Op3D and Init3D")
	}
	if s.Deployment == Clustered {
		if s.Scheme != Online {
			return specErrorf("stencilabft: the cluster deployment protects with the online scheme only (got %q)", s.Scheme)
		}
		topo := s.topology()
		if _, err := ParseTopology(string(topo)); err != nil {
			return err
		}
		if has3D && topo != TopoLayers {
			return specErrorf("stencilabft: a 3-D cluster decomposes into z-layer slabs; topology %q is 2-D-only (use TopoLayers or leave Topology empty)", topo)
		}
		if !has3D && topo == TopoLayers {
			return specErrorf("stencilabft: the layers topology decomposes 3-D domains (this spec is 2-D; use TopoGrid or TopoBands)")
		}
		hasGrid := s.RanksX != 0 || s.RanksY != 0
		if s.Ranks != 0 && hasGrid {
			return specErrorf("stencilabft: set either Ranks (the Nx1 shorthand) or RanksX/RanksY, not both (got Ranks %d with grid %dx%d)",
				s.Ranks, s.RanksY, s.RanksX)
		}
		if topo == TopoLayers {
			if hasGrid {
				return specErrorf("stencilabft: RanksX/RanksY shape 2-D rank grids; a layer cluster takes its slab count from Ranks")
			}
			if s.Ranks < 1 {
				return specErrorf("stencilabft: layer cluster needs Ranks >= 1 (got %d)", s.Ranks)
			}
		} else {
			rx, ry := s.rankGrid()
			if rx < 1 || ry < 1 {
				return specErrorf("stencilabft: cluster deployment needs Ranks >= 1 or a RanksX x RanksY grid with both factors >= 1 (got Ranks %d, grid %dx%d)",
					s.Ranks, s.RanksY, s.RanksX)
			}
			if topo == TopoBands && rx != 1 {
				return specErrorf("stencilabft: the bands topology is the 1-column grid; got %d rank columns (use TopoGrid)", rx)
			}
		}
		if s.InjectSource != nil {
			return specErrorf("stencilabft: InjectSource is local-only; cluster injection routes a Plan (set Inject)")
		}
		if s.HaloDepth < 0 {
			return specErrorf("stencilabft: HaloDepth %d is invalid; use 0 or 1 for the classic exchange-every-iteration schedule, k > 1 for depth-k ghost zones", s.HaloDepth)
		}
		if s.HaloDepth > 1 && topo == TopoLayers {
			return specErrorf("stencilabft: HaloDepth %d (depth-k ghost zones) supports 2-D grid topologies only; the 3-D layer cluster exchanges every iteration", s.HaloDepth)
		}
		if s.Transport != "" {
			if _, err := ParseTransport(string(s.Transport)); err != nil {
				return err
			}
			if s.NewTransport != nil {
				return specErrorf("stencilabft: set either Transport (a named backend) or NewTransport (a custom factory), not both")
			}
		}
		if s.Transport == TransportTCP {
			if s.topology() == TopoLayers {
				return specErrorf("stencilabft: the tcp transport hosts one rank per process and supports 2-D grid topologies only (the 3-D layer cluster runs in-process)")
			}
			if s.Rendezvous == "" {
				return specErrorf("stencilabft: the tcp transport needs Rendezvous (host:port every rank process meets at)")
			}
			rx, ry := s.rankGrid()
			if s.Rank < 0 || s.Rank >= rx*ry {
				return specErrorf("stencilabft: Rank %d outside the %d-rank tcp cluster (grid %dx%d)", s.Rank, rx*ry, ry, rx)
			}
			if len(s.LocalRanks) > 0 {
				hasRank := false
				for _, id := range s.LocalRanks {
					if id < 0 || id >= rx*ry {
						return specErrorf("stencilabft: LocalRanks entry %d outside the %d-rank tcp cluster (grid %dx%d)", id, rx*ry, ry, rx)
					}
					hasRank = hasRank || id == s.Rank
				}
				if !hasRank {
					return specErrorf("stencilabft: LocalRanks %v does not contain Rank %d", s.LocalRanks, s.Rank)
				}
			}
		} else {
			if s.DeathDeadline != 0 {
				return specErrorf("stencilabft: DeathDeadline tunes the tcp transport's healing only (set Transport: TransportTCP)")
			}
			if s.WrapConn != nil {
				return specErrorf("stencilabft: WrapConn hooks the tcp transport's connections only (set Transport: TransportTCP)")
			}
			if len(s.LocalRanks) > 0 {
				return specErrorf("stencilabft: LocalRanks widens the tcp transport's hosting only (set Transport: TransportTCP)")
			}
			if s.Rendezvous != "" {
				return specErrorf("stencilabft: Rendezvous applies to the tcp transport only (set Transport: TransportTCP)")
			}
			if s.Rank != 0 {
				return specErrorf("stencilabft: Rank selects this process's rank under the tcp transport only (set Transport: TransportTCP)")
			}
			if s.Bind != "" {
				return specErrorf("stencilabft: Bind shapes the tcp transport's data listener only (set Transport: TransportTCP)")
			}
		}
		// Knobs the per-rank online protection has no seam for: reject
		// them loudly rather than silently running a different experiment
		// than the spec appears to declare.
		if s.Period != 0 {
			return specErrorf("stencilabft: Period applies to the offline scheme; the cluster deployment is online-only")
		}
		if s.Recovery != FullRollback {
			return specErrorf("stencilabft: Recovery applies to the offline scheme; the cluster deployment is online-only")
		}
		if s.PaperExactCorrection {
			return specErrorf("stencilabft: PaperExactCorrection is not supported by the cluster deployment (ranks always use the stable correction)")
		}
	} else {
		if s.AfterStep != nil {
			return specErrorf("stencilabft: AfterStep hooks the cluster deployment's rank loop only")
		}
		if len(s.LocalRanks) > 0 {
			return specErrorf("stencilabft: LocalRanks apply to the cluster deployment's tcp transport only")
		}
		if s.Ranks != 0 || s.RanksX != 0 || s.RanksY != 0 {
			return specErrorf("stencilabft: Ranks/RanksX/RanksY apply to the cluster deployment only (deployment %q with %d/%d/%d)",
				s.Deployment, s.Ranks, s.RanksX, s.RanksY)
		}
		if s.Topology != "" {
			return specErrorf("stencilabft: Topology applies to the cluster deployment only")
		}
		if s.HaloDepth != 0 {
			return specErrorf("stencilabft: HaloDepth applies to the cluster deployment only (deployment %q with depth %d)", s.Deployment, s.HaloDepth)
		}
		if s.Transport != "" || s.NewTransport != nil {
			return specErrorf("stencilabft: Transport/NewTransport apply to the cluster deployment only")
		}
		if s.WrapTransport != nil || s.RecvTimeout != 0 {
			return specErrorf("stencilabft: WrapTransport/RecvTimeout apply to the cluster deployment only")
		}
		if s.DeathDeadline != 0 || s.WrapConn != nil {
			return specErrorf("stencilabft: DeathDeadline/WrapConn apply to the cluster deployment's tcp transport only")
		}
		if s.Rendezvous != "" || s.Rank != 0 || s.Bind != "" {
			return specErrorf("stencilabft: Rank/Rendezvous/Bind apply to the cluster deployment's tcp transport only")
		}
	}
	if s.Scheme == Blocked {
		if has3D {
			return specErrorf("stencilabft: the blocked scheme tiles 2-D domains only")
		}
		if s.BlockX < 1 || s.BlockY < 1 {
			return specErrorf("stencilabft: blocked scheme needs BlockX and BlockY >= 1 (got %dx%d)", s.BlockX, s.BlockY)
		}
	} else if s.BlockX != 0 || s.BlockY != 0 {
		return specErrorf("stencilabft: BlockX/BlockY apply to the blocked scheme only (scheme %q with %dx%d blocks)",
			s.Scheme, s.BlockX, s.BlockY)
	}
	return nil
}

// Validate checks the spec exactly as Build would — defaults applied, then
// the full validation pass — without constructing anything. A service
// front-end calls it at admission time so a malformed spec is rejected with
// a typed error (errors.Is: ErrInvalidSpec and friends) before a worker is
// ever scheduled. Geometry checks that need the concrete deployment (e.g.
// ErrThinTile) still surface from Build.
func (s Spec[T]) Validate() error {
	s = s.withDefaults()
	return s.validate()
}

// topology resolves the spec's Topology with its dimensionality-dependent
// default: grid for 2-D clustered runs, layers for 3-D ones.
func (s Spec[T]) topology() Topology {
	if s.Topology != "" {
		return s.Topology
	}
	if s.is3D() {
		return TopoLayers
	}
	return TopoGrid
}

// rankGrid resolves the 2-D rank-grid shape (columns, rows): RanksX/RanksY
// when set, else the Ranks shorthand as Ranks row bands (a 1-column grid).
func (s Spec[T]) rankGrid() (ranksX, ranksY int) {
	if s.RanksX != 0 || s.RanksY != 0 {
		return s.RanksX, s.RanksY
	}
	return 1, s.Ranks
}

// injectSource resolves the spec's fault configuration to the per-iteration
// hook seam local protectors consume.
func (s Spec[T]) injectSource() InjectSource[T] {
	if s.InjectSource != nil {
		return s.InjectSource
	}
	if s.Inject != nil {
		return NewInjector[T](s.Inject)
	}
	return nil
}

// coreOptions maps the shared knobs onto the core protectors' options.
func (s Spec[T]) coreOptions() core.Options[T] {
	return core.Options[T]{
		Detector:             s.Detector,
		PairPolicy:           s.PairPolicy,
		Pool:                 s.Pool,
		Period:               s.Period,
		DropBoundaryTerms:    s.DropBoundaryTerms,
		PaperExactCorrection: s.PaperExactCorrection,
		Recovery:             s.Recovery,
		Inject:               s.injectSource(),
		Telemetry:            s.Telemetry.Recorder(0),
	}
}

// blocksOptions maps the shared knobs onto the tiled protector's options.
func (s Spec[T]) blocksOptions() blocks.Options[T] {
	return blocks.Options[T]{
		Detector:          s.Detector,
		Pool:              s.Pool,
		PairPolicy:        s.PairPolicy,
		Inject:            s.injectSource(),
		DropBoundaryTerms: s.DropBoundaryTerms,
		Telemetry:         s.Telemetry.Recorder(0),
	}
}

// distOptions maps the shared knobs onto the cluster's options. The tcp
// transport and its LocalRanks hosting are filled in by Build, which owns
// the socket bootstrap.
func (s Spec[T]) distOptions() dist.Options[T] {
	return dist.Options[T]{
		Detector:          s.Detector,
		PairPolicy:        s.PairPolicy,
		Pool:              s.Pool,
		DropBoundaryTerms: s.DropBoundaryTerms,
		HaloDepth:         s.HaloDepth,
		Inject:            s.Inject,
		RecvTimeout:       s.RecvTimeout,
		NewTransport:      s.NewTransport,
		WrapTransport:     s.WrapTransport,
		AfterStep:         s.AfterStep,
		Telemetry:         s.Telemetry,
	}
}

// Telemetry collects per-rank phase timers and span timelines for one run;
// build one with NewTelemetry, set it on Spec.Telemetry, and export through
// WriteTrace / WritePrometheus / Stats.Timing after (or during — the phase
// accumulators are safe to scrape live) the run.
type Telemetry = telemetry.Collector

// Recorder is one rank's telemetry handle: phase accumulators plus a
// fixed-capacity span ring. A nil Recorder is a no-op, which is how
// disabled telemetry stays free on the hot path.
type Recorder = telemetry.Recorder

// NewTelemetry builds a telemetry collector whose per-rank span rings hold
// spanCap spans each (0 picks the 4096 default; negative disables span
// recording, keeping only the phase accumulators).
func NewTelemetry(spanCap int) *Telemetry { return telemetry.New(spanCap) }

// WriteTrace exports a collector's span timeline as Chrome trace-event JSON
// (open in chrome://tracing or https://ui.perfetto.dev): one lane per rank,
// one slice per recorded phase interval. A nil collector writes an empty
// but valid trace.
func WriteTrace(w io.Writer, c *Telemetry) error { return c.WriteTrace(w) }

// PairPolicy selects how simultaneous multi-error mismatches are paired
// into locations (PairByResidual, the robust default, or PairByIndex, the
// paper's Figure 6 ordering).
type PairPolicy = checksum.PairPolicy

// Pairing policies.
const (
	PairByResidual = checksum.PairByResidual
	PairByIndex    = checksum.PairByIndex
)

// InjectSource yields the per-iteration fault-injection hook a protector
// consults when stepping — the pluggable seam behind Spec.InjectSource and
// Options.Inject. An Injector (NewInjector) is the standard implementation.
type InjectSource[T Float] = stencil.InjectSource[T]

// Transport is the cluster's communication seam: send/recv of halo strips
// in all four directions plus the iteration barrier. The in-process
// channel backend is the default; the TCP backend (Spec.Transport:
// TransportTCP) runs each rank as a real OS process; custom backends
// implement this interface and plug in via Spec.NewTransport. See the dist
// package for the full contract.
type Transport[T Float] = dist.Transport[T]

// Dir is a halo direction (Up/Down/Left/Right) as the transport seam sees
// it — exported for Spec.WrapConn hooks. See dist.Dir.
type Dir = dist.Dir

// NewChanTransport returns the default in-process paired-channel transport
// for a ranksX-by-ranksY rank grid — exported so custom transports can
// wrap it (e.g. to trace or delay messages) before handing it to
// Spec.NewTransport. A 1-D band or layer chain is the (1, nRanks) shape.
func NewChanTransport[T Float](ranksX, ranksY int, ring bool) *dist.ChanTransport[T] {
	return dist.NewChanTransport[T](ranksX, ranksY, ring)
}

// TCPConfig configures a stand-alone TCP transport built with
// NewTCPTransport — the escape hatch for hosting several ranks in one
// process or tuning bootstrap deadlines; Build's TransportTCP path covers
// the common one-rank-per-process case without it.
type TCPConfig = dist.TCPConfig

// NewTCPTransport bootstraps the socket Transport backend directly (see
// dist.NewTCPTransport). Hand the result to Spec.NewTransport, and Close
// it when the run is over.
func NewTCPTransport[T Float](cfg TCPConfig) (*dist.TCPTransport[T], error) {
	return dist.NewTCPTransport[T](cfg)
}
