package stencilabft

import (
	"sort"

	"stencilabft/internal/blocks"
	"stencilabft/internal/core"
	"stencilabft/internal/dist"
)

// Protector is the unified contract every runner satisfies, regardless of
// scheme (none/online/offline/blocked), deployment (local/cluster) or
// dimensionality. Step advances one sweep — fault injection comes from the
// Spec, so it takes no arguments; Run advances count sweeps; Grid and
// Grid3D expose the current state (the accessor matching the spec's
// dimensionality returns the domain, the other returns nil; a Clustered
// protector gathers on each Grid call); Finalize discharges end-of-run
// obligations (the offline schemes verify any partial period; everything
// else no-ops), folding the old Finalizer type-assertion into the contract.
type Protector[T Float] interface {
	Step()
	Run(count int)
	Grid() *Grid[T]
	Grid3D() *Grid3D[T]
	Iter() int
	Stats() Stats
	Finalize()
}

// Compile-time conformance checks: all six core protectors, the tiled
// protector and the cluster satisfy the unified contract for both element
// types.
var (
	_ Protector[float32] = (*None2D[float32])(nil)
	_ Protector[float32] = (*Online2D[float32])(nil)
	_ Protector[float32] = (*Offline2D[float32])(nil)
	_ Protector[float32] = (*None3D[float32])(nil)
	_ Protector[float32] = (*Online3D[float32])(nil)
	_ Protector[float32] = (*Offline3D[float32])(nil)
	_ Protector[float32] = (*Blocked2D[float32])(nil)
	_ Protector[float32] = (*Cluster[float32])(nil)
	_ Protector[float32] = (*Cluster3D[float32])(nil)
	_ Protector[float64] = (*None2D[float64])(nil)
	_ Protector[float64] = (*Online2D[float64])(nil)
	_ Protector[float64] = (*Offline2D[float64])(nil)
	_ Protector[float64] = (*None3D[float64])(nil)
	_ Protector[float64] = (*Online3D[float64])(nil)
	_ Protector[float64] = (*Offline3D[float64])(nil)
	_ Protector[float64] = (*Blocked2D[float64])(nil)
	_ Protector[float64] = (*Cluster[float64])(nil)
	_ Protector[float64] = (*Cluster3D[float64])(nil)
)

// BuildFunc constructs a protector from a validated Spec — the entry type
// of the Build registry.
type BuildFunc[T Float] func(Spec[T]) (Protector[T], error)

// BuildKey is the registry key for a scheme × deployment cell, e.g.
// "online/cluster" — the string the CLIs' mode flags resolve to.
func BuildKey(s Scheme, d Deployment) string { return string(s) + "/" + string(d) }

// builders assembles the string-keyed scheme×deployment registry for
// element type T. Go has no generic package-level variables, so the table
// is materialised per call; the set of keys is fixed and mirrored by
// BuildKeys.
func builders[T Float]() map[string]BuildFunc[T] {
	return map[string]BuildFunc[T]{
		BuildKey(None, Local):       buildNone[T],
		BuildKey(Online, Local):     buildOnline[T],
		BuildKey(Offline, Local):    buildOffline[T],
		BuildKey(Blocked, Local):    buildBlocked[T],
		BuildKey(Online, Clustered): buildCluster[T],
	}
}

// BuildKeys lists the registered scheme×deployment combinations, sorted —
// what a CLI prints when asked for the supported matrix.
func BuildKeys() []string {
	m := builders[float32]()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Build constructs the protector declared by spec — the single factory
// behind every scheme × deployment × dimensionality combination. The
// concrete type is the matching protector (e.g. *Online2D, *Cluster), so
// callers needing scheme-specific extras can type-assert, but the unified
// Protector surface covers the whole run lifecycle.
func Build[T Float](spec Spec[T]) (Protector[T], error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	b, ok := builders[T]()[BuildKey(spec.Scheme, spec.Deployment)]
	if !ok {
		return nil, kindErrorf(ErrUnsupportedCombination, "stencilabft: unsupported combination %q (registered: %v)",
			BuildKey(spec.Scheme, spec.Deployment), BuildKeys())
	}
	return b(spec)
}

func buildNone[T Float](spec Spec[T]) (Protector[T], error) {
	if spec.is3D() {
		return core.NewNone3D(spec.Op3D, spec.Init3D, spec.coreOptions())
	}
	return core.NewNone2D(spec.Op2D, spec.Init, spec.coreOptions())
}

func buildOnline[T Float](spec Spec[T]) (Protector[T], error) {
	if spec.is3D() {
		return core.NewOnline3D(spec.Op3D, spec.Init3D, spec.coreOptions())
	}
	return core.NewOnline2D(spec.Op2D, spec.Init, spec.coreOptions())
}

func buildOffline[T Float](spec Spec[T]) (Protector[T], error) {
	if spec.is3D() {
		return core.NewOffline3D(spec.Op3D, spec.Init3D, spec.coreOptions())
	}
	return core.NewOffline2D(spec.Op2D, spec.Init, spec.coreOptions())
}

func buildBlocked[T Float](spec Spec[T]) (Protector[T], error) {
	return blocks.New(spec.Op2D, spec.Init, spec.BlockX, spec.BlockY, spec.blocksOptions())
}

func buildCluster[T Float](spec Spec[T]) (Protector[T], error) {
	if spec.is3D() {
		// Validation pinned the topology to layers: z-slab decomposition.
		return dist.NewCluster3D(spec.Op3D, spec.Init3D, spec.Ranks, spec.distOptions())
	}
	rx, ry := spec.rankGrid()
	opt := spec.distOptions()
	if spec.Transport == TransportTCP {
		// Validate the decomposition before opening any socket, so a
		// malformed spec fails without leaking a half-bootstrapped
		// transport (and without making peer processes wait for us).
		d := dist.Decomp{Nx: spec.Init.Nx(), Ny: spec.Init.Ny(), RanksX: rx, RanksY: ry}
		depth := spec.HaloDepth
		if depth < 1 {
			depth = 1
		}
		if err := d.ValidateDepth(spec.Op2D.St.RadiusX(), spec.Op2D.St.RadiusY(), depth); err != nil {
			return nil, err
		}
		local := spec.LocalRanks
		if len(local) == 0 {
			local = []int{spec.Rank}
		}
		tr, err := dist.NewTCPTransport[T](dist.TCPConfig{
			RanksX: rx, RanksY: ry, Ring: spec.Op2D.BC == Periodic,
			LocalRanks: local, Rendezvous: spec.Rendezvous, Bind: spec.Bind,
			IOTimeout: spec.RecvTimeout, DeathDeadline: spec.DeathDeadline,
			WrapConn: spec.WrapConn,
		})
		if err != nil {
			return nil, err
		}
		opt.LocalRanks = local
		opt.NewTransport = func(int, int, bool) Transport[T] { return tr }
		c, err := dist.NewClusterGrid(spec.Op2D, spec.Init, rx, ry, opt)
		if err != nil {
			tr.Close()
			return nil, err
		}
		return c, nil
	}
	return dist.NewClusterGrid(spec.Op2D, spec.Init, rx, ry, opt)
}
