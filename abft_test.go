package stencilabft_test

import (
	"testing"

	abft "stencilabft"
)

// The façade tests exercise the library exactly as a downstream user
// would: through the root package only, via the Spec-driven factory.

func TestPublicQuickstartFlow(t *testing.T) {
	op := &abft.Op2D[float32]{St: abft.Laplace5[float32](0.2), BC: abft.Clamp}
	init := abft.New[float32](32, 32)
	init.FillFunc(func(x, y int) float32 { return 300 })

	p, err := abft.Build(abft.Spec[float32]{
		Scheme: abft.Online,
		Op2D:   op,
		Init:   init,
		Inject: abft.NewPlan(abft.Injection{Iteration: 5, X: 10, Y: 11, Bit: 30}),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(20)
	p.Finalize()
	st := p.Stats()
	if st.Detections != 1 || st.CorrectedPoints != 1 {
		t.Fatalf("public online flow: %+v", st)
	}
	if p.Grid() == nil || p.Grid3D() != nil {
		t.Fatal("2-D protector must expose Grid and nil Grid3D")
	}
}

func TestPublicOfflineConeFlow(t *testing.T) {
	op := &abft.Op2D[float64]{St: abft.Laplace5(0.2), BC: abft.Clamp}
	init := abft.New[float64](64, 64)
	init.FillFunc(func(x, y int) float64 { return 100 + float64(x%7) })

	p, err := abft.Build(abft.Spec[float64]{
		Scheme:   abft.Offline,
		Op2D:     op,
		Init:     init,
		Period:   8,
		Recovery: abft.ConeRecovery,
		Detector: abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
		Inject:   abft.NewPlan(abft.Injection{Iteration: 9, X: 30, Y: 33, Bit: 58}),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(24)
	p.Finalize()
	st := p.Stats()
	if st.Detections == 0 || st.ConeRecoveries == 0 {
		t.Fatalf("public cone flow: %+v", st)
	}
}

func TestPublicClusterFlow(t *testing.T) {
	op := &abft.Op2D[float64]{St: abft.Laplace5(0.2), BC: abft.Clamp}
	init := abft.New[float64](16, 24)
	init.FillFunc(func(x, y int) float64 { return 50 + float64(y) })

	p, err := abft.Build(abft.Spec[float64]{
		Scheme:     abft.Online,
		Deployment: abft.Clustered,
		Op2D:       op,
		Init:       init,
		Ranks:      3,
		Detector:   abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
		Inject:     abft.NewPlan(abft.Injection{Iteration: 4, X: 8, Y: 12, Bit: 60}),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(12)
	ts := p.Stats()
	if ts.Detections == 0 || ts.CorrectedPoints == 0 {
		t.Fatalf("public cluster flow: %+v", ts)
	}
	if g := p.Grid(); g.Nx() != 16 || g.Ny() != 24 {
		t.Fatal("gathered grid shape wrong")
	}
	// The concrete type is still reachable for cluster-specific extras.
	c, ok := p.(*abft.Cluster[float64])
	if !ok {
		t.Fatalf("cluster spec built %T", p)
	}
	perRank := c.RankStats()
	if len(perRank) != 3 {
		t.Fatalf("rank stats length %d", len(perRank))
	}
	var merged abft.Stats
	for _, s := range perRank {
		merged = merged.Merge(s)
	}
	// Event counters are per-rank sums; Iterations is normalised to
	// lockstep sweeps so it compares across deployments.
	if merged.Iterations != 3*12 || ts.Iterations != 12 {
		t.Fatalf("iteration counters: merged %d, cluster %d", merged.Iterations, ts.Iterations)
	}
	merged.Iterations = ts.Iterations
	if merged != ts {
		t.Fatalf("per-rank stats do not merge to the cluster total: %+v vs %+v", merged, ts)
	}
}

func TestPublicBlockedFlow(t *testing.T) {
	op := &abft.Op2D[float64]{St: abft.Laplace5(0.2), BC: abft.Clamp}
	init := abft.New[float64](48, 48)
	init.FillFunc(func(x, y int) float64 { return 200 + float64((x*13+y)%11) })

	p, err := abft.Build(abft.Spec[float64]{
		Scheme:   abft.Blocked,
		Op2D:     op,
		Init:     init,
		BlockX:   16,
		BlockY:   16,
		Detector: abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
		Inject:   abft.NewPlan(abft.Injection{Iteration: 7, X: 20, Y: 30, Bit: 58}),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(16)
	st := p.Stats()
	if st.Detections == 0 || st.FlaggedBlocks == 0 || st.CorrectedPoints == 0 {
		t.Fatalf("public blocked flow: %+v", st)
	}
	// 48x48 over 16x16 tiles = 9 blocks, each compared every iteration.
	if st.Verifications != 9*16 {
		t.Fatalf("blocked verifications %d, want one per block per iteration (%d)", st.Verifications, 9*16)
	}
}

func TestPublicCustomStencil(t *testing.T) {
	st := abft.NewStencil("mine",
		abft.Point[float32]{DX: 0, DY: 0, W: 0.5},
		abft.Point[float32]{DX: -1, DY: 0, W: 0.5},
	)
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	op := &abft.Op2D[float32]{St: st, BC: abft.Zero}
	init := abft.New[float32](8, 8)
	init.Fill(2)
	p, err := abft.Build(abft.Spec[float32]{Op2D: op, Init: init}) // zero Scheme = None
	if err != nil {
		t.Fatal(err)
	}
	p.Run(3)
	if p.Iter() != 3 {
		t.Fatal("iterations not counted")
	}
}

func TestPublic3DFlow(t *testing.T) {
	st := abft.SevenPoint3D[float32](0.4, 0.1, 0.1, 0.1, 0.1, 0.05, 0.15)
	op := &abft.Op3D[float32]{St: st, BC: abft.Clamp}
	init := abft.New3D[float32](12, 12, 4)
	init.Fill(100)
	p, err := abft.Build(abft.Spec[float32]{
		Scheme: abft.Offline,
		Op3D:   op,
		Init3D: init,
		Period: 4,
		Pool:   abft.NewPool(),
		Inject: abft.NewPlan(abft.Injection{Iteration: 3, X: 5, Y: 6, Z: 2, Bit: 30}),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(12)
	p.Finalize()
	st2 := p.Stats()
	if st2.Detections == 0 || st2.Rollbacks == 0 {
		t.Fatalf("public 3-D offline flow: %+v", st2)
	}
	if p.Grid3D() == nil || p.Grid() != nil {
		t.Fatal("3-D protector must expose Grid3D and nil Grid")
	}
}

// TestBuildPathPinsLegacyContract pins the contract the removed per-scheme
// constructors (NewOnline2D, NewCluster, ...) used to carry, now stated
// directly against Build: the factory returns the matching concrete type,
// the configured injection is applied, and a band cluster's gather is
// bit-identical to the local run of the same operator — exactly what the
// wrappers' delegation to Build guaranteed before their deletion.
func TestBuildPathPinsLegacyContract(t *testing.T) {
	op := &abft.Op2D[float32]{St: abft.Laplace5[float32](0.2), BC: abft.Clamp}
	init := abft.New[float32](32, 32)
	init.Fill(300)

	plan := abft.NewPlan(abft.Injection{Iteration: 5, X: 10, Y: 11, Bit: 30})
	p, err := abft.Build(abft.Spec[float32]{
		Scheme: abft.Online, Op2D: op, Init: init,
		InjectSource: abft.NewInjector[float32](plan),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*abft.Online2D[float32]); !ok {
		t.Fatalf("online spec built %T, want *Online2D", p)
	}
	p.Run(20)
	if st := p.Stats(); st.Detections != 1 || st.CorrectedPoints != 1 {
		t.Fatalf("online Build path: %+v", st)
	}

	c, err := abft.Build(abft.Spec[float32]{
		Scheme: abft.Online, Deployment: abft.Clustered,
		Op2D: op, Init: init, Ranks: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*abft.Cluster[float32]); !ok {
		t.Fatalf("cluster spec built %T, want *Cluster", c)
	}
	c.Run(4)
	if c.Iter() != 4 {
		t.Fatalf("cluster Build path: iter %d", c.Iter())
	}

	// Error-free band cluster gathers bit-identical to the local reference.
	ref, err := abft.Build(abft.Spec[float32]{Scheme: abft.Online, Op2D: op, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(4)
	got, want := c.Grid().Data(), ref.Grid().Data()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cluster gather diverges from local reference at %d: %v != %v", i, got[i], want[i])
		}
	}
}
