package stencilabft_test

import (
	"testing"

	abft "stencilabft"
)

// The façade tests exercise the library exactly as a downstream user
// would: through the root package only.

func TestPublicQuickstartFlow(t *testing.T) {
	op := &abft.Op2D[float32]{St: abft.Laplace5[float32](0.2), BC: abft.Clamp}
	init := abft.New[float32](32, 32)
	init.FillFunc(func(x, y int) float32 { return 300 })

	p, err := abft.NewOnline2D(op, init, abft.Options[float32]{})
	if err != nil {
		t.Fatal(err)
	}
	plan := abft.NewPlan(abft.Injection{Iteration: 5, X: 10, Y: 11, Bit: 30})
	injector := abft.NewInjector[float32](plan)
	for i := 0; i < 20; i++ {
		p.Step(injector.HookFor(i))
	}
	st := p.Stats()
	if st.Detections != 1 || st.CorrectedPoints != 1 {
		t.Fatalf("public online flow: %+v", st)
	}
}

func TestPublicOfflineConeFlow(t *testing.T) {
	op := &abft.Op2D[float64]{St: abft.Laplace5(0.2), BC: abft.Clamp}
	init := abft.New[float64](64, 64)
	init.FillFunc(func(x, y int) float64 { return 100 + float64(x%7) })

	p, err := abft.NewOffline2D(op, init, abft.Options[float64]{
		Period:   8,
		Recovery: abft.ConeRecovery,
		Detector: abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := abft.NewPlan(abft.Injection{Iteration: 9, X: 30, Y: 33, Bit: 58})
	injector := abft.NewInjector[float64](plan)
	for i := 0; i < 24; i++ {
		p.Step(injector.HookFor(i))
	}
	p.Finalize()
	st := p.Stats()
	if st.Detections == 0 || st.ConeRecoveries == 0 {
		t.Fatalf("public cone flow: %+v", st)
	}
}

func TestPublicClusterFlow(t *testing.T) {
	op := &abft.Op2D[float64]{St: abft.Laplace5(0.2), BC: abft.Clamp}
	init := abft.New[float64](16, 24)
	init.FillFunc(func(x, y int) float64 { return 50 + float64(y) })

	c, err := abft.NewCluster(op, init, 3, abft.ClusterOptions[float64]{
		Detector: abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(12, abft.NewPlan(abft.Injection{Iteration: 4, X: 8, Y: 12, Bit: 60}))
	ts := c.TotalStats()
	if ts.Detections == 0 || ts.CorrectedPoints == 0 {
		t.Fatalf("public cluster flow: %+v", ts)
	}
	if g := c.Gather(); g.Nx() != 16 || g.Ny() != 24 {
		t.Fatal("gathered grid shape wrong")
	}
}

func TestPublicCustomStencil(t *testing.T) {
	st := abft.NewStencil("mine",
		abft.Point[float32]{DX: 0, DY: 0, W: 0.5},
		abft.Point[float32]{DX: -1, DY: 0, W: 0.5},
	)
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	op := &abft.Op2D[float32]{St: st, BC: abft.Zero}
	init := abft.New[float32](8, 8)
	init.Fill(2)
	p, err := abft.NewNone2D(op, init, abft.Options[float32]{})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(3)
	if p.Iter() != 3 {
		t.Fatal("iterations not counted")
	}
}

func TestPublic3DFlow(t *testing.T) {
	st := abft.SevenPoint3D[float32](0.4, 0.1, 0.1, 0.1, 0.1, 0.05, 0.15)
	op := &abft.Op3D[float32]{St: st, BC: abft.Clamp}
	init := abft.New3D[float32](12, 12, 4)
	init.Fill(100)
	p, err := abft.NewOffline3D(op, init, abft.Options[float32]{Period: 4, Pool: abft.NewPool()})
	if err != nil {
		t.Fatal(err)
	}
	plan := abft.NewPlan(abft.Injection{Iteration: 3, X: 5, Y: 6, Z: 2, Bit: 30})
	injector := abft.NewInjector[float32](plan)
	for i := 0; i < 12; i++ {
		p.Step(injector.HookFor(i))
	}
	p.Finalize()
	st2 := p.Stats()
	if st2.Detections == 0 || st2.Rollbacks == 0 {
		t.Fatalf("public 3-D offline flow: %+v", st2)
	}
}
