package stencilabft

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
)

// WireSpec is the wire-serializable JSON form of Spec — the job description
// a service client POSTs. A Spec carries function pointers (the stencil's
// compiled operator, injection hooks, transport factories) and process-local
// state (worker pools, socket endpoints, telemetry collectors); the wire
// form replaces each with data: stencils are named registry entries or
// inline point lists, initial grids are inline values, a generator name or
// an upload reference, and the process-local knobs are simply absent —
// Spec.MarshalJSON refuses them with an actionable error rather than
// dropping them silently.
//
// The contract, pinned by wirespec_test.go: for every serializable Spec,
// ParseWireSpec(json.Marshal(spec)) + SpecFromWire builds a protector whose
// run is bit-identical to building the original Spec directly. JSON numbers
// round-trip exactly (encoding/json emits the shortest representation that
// re-reads to the same float), so grid values and stencil weights survive
// the wire bit-for-bit for both element types.
//
// See API.md for the schema as the HTTP surface documents it.
type WireSpec struct {
	// Elem names the element type: "float32" (the default) or "float64".
	Elem       string `json:"elem,omitempty"`
	Scheme     string `json:"scheme,omitempty"`
	Deployment string `json:"deployment,omitempty"`

	// Stencil is the operator kernel: a registry name (with optional
	// args) or inline points.
	Stencil *WireStencil `json:"stencil"`
	// BC names the boundary condition: clamp (default), periodic, mirror,
	// constant or zero. BCValue is the ghost value under "constant".
	BC      string  `json:"bc,omitempty"`
	BCValue float64 `json:"bcValue,omitempty"`
	// CField is the operator's optional constant field C (Equation 1),
	// inline data only, shaped like the domain.
	CField *WireGrid `json:"cfield,omitempty"`

	// Grid is the initial domain.
	Grid *WireGrid `json:"grid"`

	// Epsilon and AbsFloor configure the detector; zero keeps the paper's
	// defaults (1e-5 with an absolute floor of 1).
	Epsilon  float64 `json:"epsilon,omitempty"`
	AbsFloor float64 `json:"absFloor,omitempty"`
	// PairPolicy selects multi-error pairing: "residual" (default) or
	// "index".
	PairPolicy string `json:"pairPolicy,omitempty"`
	Period     int    `json:"period,omitempty"`
	// Recovery selects the offline repair strategy: "rollback" (default)
	// or "cone".
	Recovery  string `json:"recovery,omitempty"`
	Topology  string `json:"topology,omitempty"`
	Ranks     int    `json:"ranks,omitempty"`
	RanksX    int    `json:"ranksX,omitempty"`
	RanksY    int    `json:"ranksY,omitempty"`
	HaloDepth int    `json:"haloDepth,omitempty"`
	BlockX    int    `json:"blockX,omitempty"`
	BlockY    int    `json:"blockY,omitempty"`

	// Inject schedules planned bit-flips, exactly Spec.Inject's Plan.
	Inject []WireInjection `json:"inject,omitempty"`

	DropBoundaryTerms    bool `json:"dropBoundaryTerms,omitempty"`
	PaperExactCorrection bool `json:"paperExactCorrection,omitempty"`
	ForceGeneric         bool `json:"forceGeneric,omitempty"`
}

// WireStencil is a stencil kernel on the wire: either a registry entry by
// name with optional numeric args, or an explicit inline point list. The
// registry (see WireStencilNames) covers the library's canonical kernels;
// inline points express arbitrary stencils exactly. Spec.MarshalJSON always
// emits inline points (with the name preserved) so the weights travel
// bit-exactly regardless of how the stencil was built.
type WireStencil struct {
	Name   string      `json:"name,omitempty"`
	Args   []float64   `json:"args,omitempty"`
	Points []WirePoint `json:"points,omitempty"`
}

// WirePoint is one weighted stencil offset on the wire.
type WirePoint struct {
	DX int     `json:"dx"`
	DY int     `json:"dy"`
	DZ int     `json:"dz,omitempty"`
	W  float64 `json:"w"`
}

// WireInjection is one planned bit-flip on the wire (see Injection).
type WireInjection struct {
	Iteration int `json:"iteration"`
	X         int `json:"x"`
	Y         int `json:"y"`
	Z         int `json:"z,omitempty"`
	Bit       int `json:"bit"`
}

// WireGrid describes a domain on the wire through exactly one source:
// inline row-major data, a named deterministic generator, or a reference to
// a previously uploaded grid (which the service resolves to inline data
// before anything builds). Nz > 0 declares a 3-D domain.
type WireGrid struct {
	Nx int `json:"nx"`
	Ny int `json:"ny"`
	Nz int `json:"nz,omitempty"`

	// Upload references a grid uploaded out of band (POST /v1/grids); it
	// must be resolved to inline Data before SpecFromWire runs.
	Upload string `json:"upload,omitempty"`
	// Generator names a deterministic initial-condition generator:
	// "uniform" (100 + 50·rand, seeded by Seed), "constant" (every point
	// Value) or "ramp" (a fixed spatial pattern).
	Generator string  `json:"generator,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Value     float64 `json:"value,omitempty"`
	// Data is the inline row-major domain (x fastest, then y, then z).
	Data []float64 `json:"data,omitempty"`
}

// WireStencilNames lists the stencil registry entries SpecFromWire resolves,
// sorted — what the HTTP surface reports for an unknown name.
func WireStencilNames() []string {
	names := []string{"advect2d", "box9", "five-point", "jacobi4", "laplace5", "star7"}
	sort.Strings(names)
	return names
}

// elemName returns the wire name of element type T.
func elemName[T Float]() string {
	var z T
	if _, ok := any(z).(float64); ok {
		return "float64"
	}
	return "float32"
}

// ParseWireSpec decodes a WireSpec JSON document strictly: unknown fields
// are errors (catching typos like "epsilonn" before they silently run a
// different experiment), as is trailing garbage. Structural resolution —
// stencil registry lookup, grid generation, element-type checks — happens in
// SpecFromWire, which needs the concrete element type.
func ParseWireSpec(data []byte) (*WireSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w WireSpec
	if err := dec.Decode(&w); err != nil {
		return nil, wireErrorf(nil, "stencilabft: cannot parse wire spec: %v", err)
	}
	if dec.More() {
		return nil, wireErrorf(nil, "stencilabft: trailing data after wire spec document")
	}
	return &w, nil
}

// boundaryFromName resolves a wire boundary-condition name; "" means clamp.
func boundaryFromName(name string) (Boundary, error) {
	switch name {
	case "", "clamp":
		return Clamp, nil
	case "periodic":
		return Periodic, nil
	case "mirror":
		return Mirror, nil
	case "constant":
		return Constant, nil
	case "zero":
		return Zero, nil
	default:
		return Clamp, wireErrorf(nil, "stencilabft: unknown boundary condition %q (want clamp|periodic|mirror|constant|zero)", name)
	}
}

// stencilFromWire resolves a WireStencil: inline points verbatim, or a
// registry entry by name with its args applied.
func stencilFromWire[T Float](w *WireStencil) (*Stencil[T], error) {
	if w == nil {
		return nil, wireErrorf(nil, "stencilabft: wire spec needs a stencil (a registry name like %q, or inline points)", "laplace5")
	}
	if len(w.Points) > 0 {
		if len(w.Args) > 0 {
			return nil, wireErrorf(nil, "stencilabft: stencil args apply to registry entries only; inline points carry their own weights")
		}
		name := w.Name
		if name == "" {
			name = "wire"
		}
		st := &Stencil[T]{Name: name, Points: make([]Point[T], 0, len(w.Points))}
		for _, p := range w.Points {
			st.Points = append(st.Points, Point[T]{DX: p.DX, DY: p.DY, DZ: p.DZ, W: T(p.W)})
		}
		return st, nil
	}
	// args returns the entry's parameters: the wire args when given (the
	// count must match), else the documented defaults.
	args := func(defaults ...float64) ([]T, error) {
		src := defaults
		if len(w.Args) > 0 {
			if len(w.Args) != len(defaults) {
				return nil, wireErrorf(nil, "stencilabft: stencil %q takes %d arg(s), got %d", w.Name, len(defaults), len(w.Args))
			}
			src = w.Args
		}
		out := make([]T, len(src))
		for i, v := range src {
			out[i] = T(v)
		}
		return out, nil
	}
	noArgs := func() error {
		if len(w.Args) != 0 {
			return wireErrorf(nil, "stencilabft: stencil %q takes no args, got %d", w.Name, len(w.Args))
		}
		return nil
	}
	switch w.Name {
	case "":
		return nil, wireErrorf(nil, "stencilabft: wire stencil needs a registry name (%v) or inline points", WireStencilNames())
	case "laplace5":
		a, err := args(0.2)
		if err != nil {
			return nil, err
		}
		return Laplace5(a[0]), nil
	case "jacobi4":
		if err := noArgs(); err != nil {
			return nil, err
		}
		return Jacobi4[T](), nil
	case "box9":
		if err := noArgs(); err != nil {
			return nil, err
		}
		return BoxBlur[T](), nil
	case "five-point":
		a, err := args(0.2, 0.2, 0.2, 0.2, 0.2)
		if err != nil {
			return nil, err
		}
		return FivePoint(a[0], a[1], a[2], a[3], a[4]), nil
	case "advect2d":
		a, err := args(0.3, 0.2)
		if err != nil {
			return nil, err
		}
		return Advect2D(a[0], a[1]), nil
	case "star7":
		a, err := args(0.4, 0.1, 0.1, 0.1, 0.1, 0.05, 0.15)
		if err != nil {
			return nil, err
		}
		return SevenPoint3D(a[0], a[1], a[2], a[3], a[4], a[5], a[6]), nil
	default:
		return nil, wireErrorf(ErrUnknownStencil, "stencilabft: unknown stencil %q (registry: %v; or supply inline points)", w.Name, WireStencilNames())
	}
}

// fillGenerated writes generator g's values into data (row-major over an
// nx×ny×nz box; nz is 1 for 2-D domains). Every generator is deterministic:
// "uniform" draws from a rand.Source seeded with g.Seed, per element type,
// so the same wire document always yields the same bits.
func fillGenerated[T Float](data []T, g *WireGrid, nx, ny, nz int) error {
	switch g.Generator {
	case "uniform":
		rng := rand.New(rand.NewSource(g.Seed))
		if _, is64 := any(data[0]).(float64); is64 {
			for i := range data {
				data[i] = T(100 + 50*rng.Float64())
			}
		} else {
			for i := range data {
				data[i] = T(100 + 50*rng.Float32())
			}
		}
	case "constant":
		v := T(g.Value)
		for i := range data {
			data[i] = v
		}
	case "ramp":
		i := 0
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					data[i] = T(100 + (x*13+y*7+z*3)%17)
					i++
				}
			}
		}
	default:
		return wireErrorf(ErrUnknownGenerator, "stencilabft: unknown grid generator %q (want uniform|constant|ramp, or supply inline data)", g.Generator)
	}
	return nil
}

// gridFromWire materialises a WireGrid into the matching dimensionality's
// domain. Upload references must have been resolved to inline data first —
// that is the service layer's job (POST /v1/grids), and leaving one
// unresolved is an error here, not a silent zero grid.
func gridFromWire[T Float](g *WireGrid, what string) (*Grid[T], *Grid3D[T], error) {
	if g == nil {
		return nil, nil, wireErrorf(nil, "stencilabft: wire spec needs a %s (inline data, a generator, or a resolved upload)", what)
	}
	nz := g.Nz
	if nz < 0 {
		return nil, nil, wireErrorf(nil, "stencilabft: %s has negative nz %d (use nz >= 1 for 3-D, omit it or set 0 for 2-D)", what, g.Nz)
	}
	is3D := nz > 0
	if !is3D {
		nz = 1
	}
	if g.Nx < 1 || g.Ny < 1 {
		return nil, nil, wireErrorf(nil, "stencilabft: %s shape %dx%dx%d is invalid (each set axis must be >= 1)", what, g.Nx, g.Ny, g.Nz)
	}
	sources := 0
	for _, set := range []bool{g.Upload != "", g.Generator != "", g.Data != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, nil, wireErrorf(nil, "stencilabft: %s needs exactly one source — inline data, a generator name, or an upload reference (got %d)", what, sources)
	}
	if g.Upload != "" {
		return nil, nil, wireErrorf(ErrUnresolvedUpload, "stencilabft: %s references upload %q, which must be resolved to inline data before building (the service splices uploads in; see POST /v1/grids)", what, g.Upload)
	}
	n := g.Nx * g.Ny * nz
	var data []T
	if g.Data != nil {
		if len(g.Data) != n {
			return nil, nil, wireErrorf(nil, "stencilabft: %s carries %d inline values, want nx*ny*max(nz,1) = %d", what, len(g.Data), n)
		}
		data = make([]T, n)
		for i, v := range g.Data {
			data[i] = T(v)
		}
	} else {
		data = make([]T, n)
		if err := fillGenerated(data, g, g.Nx, g.Ny, nz); err != nil {
			return nil, nil, err
		}
	}
	if is3D {
		gd := New3D[T](g.Nx, g.Ny, g.Nz)
		copy(gd.Data(), data)
		return nil, gd, nil
	}
	gd := New[T](g.Nx, g.Ny)
	copy(gd.Data(), data)
	return gd, nil, nil
}

// SpecFromWire resolves a parsed WireSpec into a buildable Spec for element
// type T: registry stencils become point sets, generator grids become
// values, names become enums. The wire document's elem field must match T —
// a service dispatches on it; a library caller instantiates accordingly.
// Validation beyond resolution is left to Build, whose errors are typed
// (ErrInvalidSpec and friends) just like the wire errors here.
func SpecFromWire[T Float](w *WireSpec) (Spec[T], error) {
	var spec Spec[T]
	if w == nil {
		return spec, wireErrorf(nil, "stencilabft: nil wire spec")
	}
	elem := w.Elem
	if elem == "" {
		elem = "float32"
	}
	if elem != "float32" && elem != "float64" {
		return spec, wireErrorf(nil, "stencilabft: unknown elem %q (want float32|float64)", elem)
	}
	if want := elemName[T](); elem != want {
		return spec, wireErrorf(nil, "stencilabft: wire spec declares elem %q but the caller builds %s specs — dispatch on the elem field before resolving", elem, want)
	}
	st, err := stencilFromWire[T](w.Stencil)
	if err != nil {
		return spec, err
	}
	bc, err := boundaryFromName(w.BC)
	if err != nil {
		return spec, err
	}
	init, init3, err := gridFromWire[T](w.Grid, "grid")
	if err != nil {
		return spec, err
	}
	var cf *Grid[T]
	var cf3 *Grid3D[T]
	if w.CField != nil {
		if w.CField.Data == nil {
			return spec, wireErrorf(nil, "stencilabft: cfield carries the operator's constant term and must be inline data")
		}
		cf, cf3, err = gridFromWire[T](w.CField, "cfield")
		if err != nil {
			return spec, err
		}
		if (cf3 != nil) != (init3 != nil) {
			return spec, wireErrorf(nil, "stencilabft: cfield dimensionality must match the grid's (set nz on both or neither)")
		}
	}
	spec.Scheme = Scheme(w.Scheme)
	spec.Deployment = Deployment(w.Deployment)
	if init3 != nil {
		spec.Op3D = &Op3D[T]{St: st, BC: bc, BCValue: T(w.BCValue), C: cf3, ForceGeneric: w.ForceGeneric}
		spec.Init3D = init3
	} else {
		spec.Op2D = &Op2D[T]{St: st, BC: bc, BCValue: T(w.BCValue), C: cf, ForceGeneric: w.ForceGeneric}
		spec.Init = init
	}
	spec.Detector = Detector[T]{Epsilon: T(w.Epsilon), AbsFloor: T(w.AbsFloor)}
	switch w.PairPolicy {
	case "", "residual":
		spec.PairPolicy = PairByResidual
	case "index":
		spec.PairPolicy = PairByIndex
	default:
		return Spec[T]{}, wireErrorf(nil, "stencilabft: unknown pair policy %q (want residual|index)", w.PairPolicy)
	}
	spec.Period = w.Period
	switch w.Recovery {
	case "", "rollback":
		spec.Recovery = FullRollback
	case "cone":
		spec.Recovery = ConeRecovery
	default:
		return Spec[T]{}, wireErrorf(nil, "stencilabft: unknown recovery mode %q (want rollback|cone)", w.Recovery)
	}
	spec.Topology = Topology(w.Topology)
	spec.Ranks = w.Ranks
	spec.RanksX, spec.RanksY = w.RanksX, w.RanksY
	spec.HaloDepth = w.HaloDepth
	spec.BlockX, spec.BlockY = w.BlockX, w.BlockY
	if len(w.Inject) > 0 {
		injs := make([]Injection, len(w.Inject))
		for i, in := range w.Inject {
			injs[i] = Injection{Iteration: in.Iteration, X: in.X, Y: in.Y, Z: in.Z, Bit: in.Bit}
		}
		spec.Inject = NewPlan(injs...)
	}
	spec.DropBoundaryTerms = w.DropBoundaryTerms
	spec.PaperExactCorrection = w.PaperExactCorrection
	return spec, nil
}

// Wire converts the Spec to its wire form, refusing process-local state
// with an actionable error per field (errors.Is: ErrNotSerializable). The
// emitted form is fully resolved — stencil as inline points, grids as
// inline values, elem explicit — so it doubles as the canonical document
// content-addressed caches hash.
func (s Spec[T]) Wire() (*WireSpec, error) {
	switch {
	case s.Pool != nil:
		return nil, notSerializablef("stencilabft: Pool is process-local; the executing worker chooses its own pool (leave Pool nil — parallelism does not change results)")
	case s.InjectSource != nil:
		return nil, notSerializablef("stencilabft: InjectSource is a function hook and cannot travel; declare the faults as a Plan on Inject instead")
	case s.NewTransport != nil:
		return nil, notSerializablef("stencilabft: NewTransport is a function hook and cannot travel; name a backend on Transport, or leave it empty for the default")
	case s.WrapTransport != nil:
		return nil, notSerializablef("stencilabft: WrapTransport is a function hook and cannot travel; chaos/tracing wrappers are host-side configuration")
	case s.WrapConn != nil:
		return nil, notSerializablef("stencilabft: WrapConn is a function hook and cannot travel; wire-level chaos is host-side configuration")
	case s.AfterStep != nil:
		return nil, notSerializablef("stencilabft: AfterStep is a function hook and cannot travel; checkpointing hooks are host-side configuration")
	case s.Telemetry != nil:
		return nil, notSerializablef("stencilabft: Telemetry is process-local; the executing worker attaches its own collector and reports Stats.Timing back")
	case s.Transport == TransportTCP || s.Rendezvous != "" || s.Bind != "" || s.Rank != 0 || len(s.LocalRanks) != 0:
		return nil, notSerializablef("stencilabft: tcp endpoints (Transport: \"tcp\", Rank, LocalRanks, Rendezvous, Bind) are process placement, not experiment description; the service assigns ranks and rendezvous itself")
	case s.RecvTimeout != 0:
		return nil, notSerializablef("stencilabft: RecvTimeout is a process-local liveness bound; the executing host sets its own deadlines")
	case s.DeathDeadline != 0:
		return nil, notSerializablef("stencilabft: DeathDeadline is a process-local healing bound; the executing host sets its own deadlines")
	}
	w := &WireSpec{
		Elem:       elemName[T](),
		Scheme:     string(s.Scheme),
		Deployment: string(s.Deployment),
		Topology:   string(s.Topology),
		Ranks:      s.Ranks, RanksX: s.RanksX, RanksY: s.RanksY,
		HaloDepth: s.HaloDepth,
		BlockX:    s.BlockX, BlockY: s.BlockY,
		Epsilon:  float64(s.Detector.Epsilon),
		AbsFloor: float64(s.Detector.AbsFloor),
		Period:   s.Period,

		DropBoundaryTerms:    s.DropBoundaryTerms,
		PaperExactCorrection: s.PaperExactCorrection,
	}
	if s.PairPolicy == PairByIndex {
		w.PairPolicy = "index"
	}
	if s.Recovery == ConeRecovery {
		w.Recovery = "cone"
	}
	var st *Stencil[T]
	switch {
	case s.Op2D != nil && s.Init != nil:
		st = s.Op2D.St
		w.BC = s.Op2D.BC.String()
		w.BCValue = float64(s.Op2D.BCValue)
		w.ForceGeneric = s.Op2D.ForceGeneric
		w.Grid = wireGrid2D(s.Init)
		if s.Op2D.C != nil {
			w.CField = wireGrid2D(s.Op2D.C)
		}
	case s.Op3D != nil && s.Init3D != nil:
		st = s.Op3D.St
		w.BC = s.Op3D.BC.String()
		w.BCValue = float64(s.Op3D.BCValue)
		w.ForceGeneric = s.Op3D.ForceGeneric
		w.Grid = wireGrid3D(s.Init3D)
		if s.Op3D.C != nil {
			w.CField = wireGrid3D(s.Op3D.C)
		}
	default:
		return nil, notSerializablef("stencilabft: spec has no complete operator to serialize (set Op2D with Init, or Op3D with Init3D)")
	}
	if st == nil {
		return nil, notSerializablef("stencilabft: spec's operator has no stencil")
	}
	ws := &WireStencil{Name: st.Name, Points: make([]WirePoint, 0, len(st.Points))}
	for _, p := range st.Points {
		ws.Points = append(ws.Points, WirePoint{DX: p.DX, DY: p.DY, DZ: p.DZ, W: float64(p.W)})
	}
	w.Stencil = ws
	if s.Inject != nil {
		for _, in := range s.Inject.Injections() {
			w.Inject = append(w.Inject, WireInjection{Iteration: in.Iteration, X: in.X, Y: in.Y, Z: in.Z, Bit: in.Bit})
		}
	}
	return w, nil
}

// wireGrid2D encodes a 2-D grid as inline wire data.
func wireGrid2D[T Float](g *Grid[T]) *WireGrid {
	data := make([]float64, g.Len())
	for i, v := range g.Data() {
		data[i] = float64(v)
	}
	return &WireGrid{Nx: g.Nx(), Ny: g.Ny(), Data: data}
}

// wireGrid3D encodes a 3-D grid as inline wire data.
func wireGrid3D[T Float](g *Grid3D[T]) *WireGrid {
	data := make([]float64, g.Len())
	for i, v := range g.Data() {
		data[i] = float64(v)
	}
	return &WireGrid{Nx: g.Nx(), Ny: g.Ny(), Nz: g.Nz(), Data: data}
}

// MarshalJSON serializes the Spec through its wire form; see Wire for what
// is refused and why. json.Marshal(spec) therefore either yields a document
// ParseWireSpec + SpecFromWire rebuilds bit-identically, or fails loudly.
func (s Spec[T]) MarshalJSON() ([]byte, error) {
	w, err := s.Wire()
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses a wire document straight into the Spec — the inverse
// of MarshalJSON. The document's elem field must match T.
func (s *Spec[T]) UnmarshalJSON(data []byte) error {
	w, err := ParseWireSpec(data)
	if err != nil {
		return err
	}
	spec, err := SpecFromWire[T](w)
	if err != nil {
		return err
	}
	*s = spec
	return nil
}
