package stencilabft_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	abft "stencilabft"
)

// roundTrip marshals spec to its wire form, parses it back, and returns the
// rebuilt spec, failing the test on any step.
func roundTrip[T abft.Float](t *testing.T, spec abft.Spec[T]) abft.Spec[T] {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	w, err := abft.ParseWireSpec(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rebuilt, err := abft.SpecFromWire[T](w)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	return rebuilt
}

// runBoth builds and runs the original and the round-tripped spec and
// demands bit-identical domains and identical fault counters.
func runBoth[T abft.Float](t *testing.T, spec abft.Spec[T], iters int) {
	t.Helper()
	rebuilt := roundTrip(t, spec)

	run := func(s abft.Spec[T]) (*abft.Grid[T], *abft.Grid3D[T], abft.Stats) {
		p, err := abft.Build(s)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		p.Run(iters)
		p.Finalize()
		return p.Grid(), p.Grid3D(), p.Stats()
	}
	g1, g31, st1 := run(spec)
	g2, g32, st2 := run(rebuilt)

	var d1, d2 []T
	switch {
	case g1 != nil && g2 != nil:
		d1, d2 = g1.Data(), g2.Data()
	case g31 != nil && g32 != nil:
		d1, d2 = g31.Data(), g32.Data()
	default:
		t.Fatalf("dimensionality diverged through the wire: %v/%v vs %v/%v", g1, g31, g2, g32)
	}
	if len(d1) != len(d2) {
		t.Fatalf("domain sizes diverged: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("round-tripped run diverges at %d: %v != %v", i, d1[i], d2[i])
		}
	}
	var zero abft.Stats
	st1.Timing, st2.Timing = zero.Timing, zero.Timing
	if st1 != st2 {
		t.Fatalf("round-tripped stats diverge:\n  direct %+v\n  wire   %+v", st1, st2)
	}
}

// TestWireSpecRoundTripMatrix is the acceptance pin: across all five
// boundary conditions and both 2-D topologies (Cartesian grid and row
// bands), a clustered Spec survives Marshal → Parse → Build bit-identically.
func TestWireSpecRoundTripMatrix(t *testing.T) {
	bcs := []abft.Boundary{abft.Clamp, abft.Periodic, abft.Mirror, abft.Constant, abft.Zero}
	for _, bc := range bcs {
		for _, topo := range []abft.Topology{abft.TopoGrid, abft.TopoBands} {
			bc, topo := bc, topo
			t.Run(bc.String()+"/"+string(topo), func(t *testing.T) {
				t.Parallel()
				init := abft.New[float32](24, 18)
				init.FillFunc(func(x, y int) float32 { return 100 + float32((x*13+y*7)%17) })
				spec := abft.Spec[float32]{
					Scheme:     abft.Online,
					Deployment: abft.Clustered,
					Op2D:       &abft.Op2D[float32]{St: abft.Laplace5[float32](0.2), BC: bc, BCValue: 7},
					Init:       init,
					Topology:   topo,
					Inject:     abft.NewPlan(abft.Injection{Iteration: 3, X: 11, Y: 9, Bit: 29}),
				}
				if topo == abft.TopoGrid {
					spec.RanksX, spec.RanksY = 2, 2
				} else {
					spec.Ranks = 3
				}
				runBoth(t, spec, 6)
			})
		}
	}
}

// TestWireSpecRoundTripLocalSchemes covers the local deployments (none,
// online, offline+cone, blocked) and the float64 element type.
func TestWireSpecRoundTripLocalSchemes(t *testing.T) {
	init := abft.New[float64](32, 32)
	init.FillFunc(func(x, y int) float64 { return 50 + float64((x*5+y*3)%13) })
	op := func() *abft.Op2D[float64] {
		return &abft.Op2D[float64]{St: abft.Advect2D[float64](0.3, 0.2), BC: abft.Clamp}
	}
	for _, spec := range []abft.Spec[float64]{
		{Scheme: abft.None, Op2D: op(), Init: init},
		{Scheme: abft.Online, Op2D: op(), Init: init,
			Detector: abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
			Inject:   abft.NewPlan(abft.Injection{Iteration: 2, X: 8, Y: 9, Bit: 55})},
		{Scheme: abft.Offline, Op2D: op(), Init: init, Period: 4, Recovery: abft.ConeRecovery,
			Detector: abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
			Inject:   abft.NewPlan(abft.Injection{Iteration: 5, X: 12, Y: 20, Bit: 55})},
		{Scheme: abft.Blocked, Op2D: op(), Init: init, BlockX: 16, BlockY: 16,
			Detector: abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1}},
	} {
		runBoth(t, spec, 8)
	}
}

// TestWireSpecRoundTrip3D pins the 3-D path: a star7 offline run survives
// the wire bit-identically, layers topology included.
func TestWireSpecRoundTrip3D(t *testing.T) {
	init := abft.New3D[float32](10, 10, 4)
	init.FillFunc(func(x, y, z int) float32 { return 100 + float32((x+2*y+3*z)%11) })
	runBoth(t, abft.Spec[float32]{
		Scheme: abft.Offline,
		Op3D:   &abft.Op3D[float32]{St: abft.SevenPoint3D[float32](0.4, 0.1, 0.1, 0.1, 0.1, 0.05, 0.15), BC: abft.Mirror},
		Init3D: init,
		Period: 4,
		Inject: abft.NewPlan(abft.Injection{Iteration: 3, X: 5, Y: 6, Z: 2, Bit: 28}),
	}, 8)

	runBoth(t, abft.Spec[float32]{
		Scheme:     abft.Online,
		Deployment: abft.Clustered,
		Op3D:       &abft.Op3D[float32]{St: abft.SevenPoint3D[float32](0.4, 0.1, 0.1, 0.1, 0.1, 0.05, 0.15), BC: abft.Clamp},
		Init3D:     init,
		Ranks:      2,
	}, 6)
}

// TestWireSpecNamedStencils checks each registry entry resolves to exactly
// the stencil its constructor builds.
func TestWireSpecNamedStencils(t *testing.T) {
	cases := []struct {
		wire string
		want *abft.Stencil[float32]
	}{
		{`{"name":"laplace5","args":[0.25]}`, abft.Laplace5[float32](0.25)},
		{`{"name":"laplace5"}`, abft.Laplace5[float32](0.2)},
		{`{"name":"jacobi4"}`, abft.Jacobi4[float32]()},
		{`{"name":"box9"}`, abft.BoxBlur[float32]()},
		{`{"name":"five-point","args":[0.6,0.1,0.1,0.1,0.1]}`, abft.FivePoint[float32](0.6, 0.1, 0.1, 0.1, 0.1)},
		{`{"name":"advect2d","args":[0.4,0.1]}`, abft.Advect2D[float32](0.4, 0.1)},
		{`{"name":"star7"}`, abft.SevenPoint3D[float32](0.4, 0.1, 0.1, 0.1, 0.1, 0.05, 0.15)},
	}
	for _, c := range cases {
		doc := []byte(`{"stencil":` + c.wire + `,"grid":{"nx":8,"ny":8,"generator":"constant","value":1}}`)
		if c.want.Is3D() {
			doc = []byte(`{"stencil":` + c.wire + `,"grid":{"nx":8,"ny":8,"nz":4,"generator":"constant","value":1}}`)
		}
		w, err := abft.ParseWireSpec(doc)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.wire, err)
		}
		spec, err := abft.SpecFromWire[float32](w)
		if err != nil {
			t.Fatalf("%s: resolve: %v", c.wire, err)
		}
		var got *abft.Stencil[float32]
		if spec.Op2D != nil {
			got = spec.Op2D.St
		} else {
			got = spec.Op3D.St
		}
		if len(got.Points) != len(c.want.Points) {
			t.Fatalf("%s: %d points, want %d", c.wire, len(got.Points), len(c.want.Points))
		}
		for i, p := range got.Points {
			if p != c.want.Points[i] {
				t.Fatalf("%s: point %d is %+v, want %+v", c.wire, i, p, c.want.Points[i])
			}
		}
	}
}

// TestWireSpecGenerators pins the deterministic generators: same document,
// same bits; distinct seeds, distinct grids.
func TestWireSpecGenerators(t *testing.T) {
	grid := func(g string) *abft.Grid[float32] {
		doc := []byte(`{"stencil":{"name":"laplace5"},"grid":` + g + `}`)
		w, err := abft.ParseWireSpec(doc)
		if err != nil {
			t.Fatalf("parse %s: %v", g, err)
		}
		spec, err := abft.SpecFromWire[float32](w)
		if err != nil {
			t.Fatalf("resolve %s: %v", g, err)
		}
		return spec.Init
	}
	a := grid(`{"nx":16,"ny":16,"generator":"uniform","seed":7}`)
	b := grid(`{"nx":16,"ny":16,"generator":"uniform","seed":7}`)
	c := grid(`{"nx":16,"ny":16,"generator":"uniform","seed":8}`)
	same, diff := true, false
	for i := range a.Data() {
		same = same && a.Data()[i] == b.Data()[i]
		diff = diff || a.Data()[i] != c.Data()[i]
	}
	if !same {
		t.Fatal("uniform generator is not deterministic for a fixed seed")
	}
	if !diff {
		t.Fatal("uniform generator ignores the seed")
	}
	for _, v := range a.Data() {
		if v < 100 || v > 150 {
			t.Fatalf("uniform value %v outside [100,150]", v)
		}
	}
	k := grid(`{"nx":4,"ny":4,"generator":"constant","value":3.5}`)
	for _, v := range k.Data() {
		if v != 3.5 {
			t.Fatalf("constant generator produced %v", v)
		}
	}
	r := grid(`{"nx":8,"ny":8,"generator":"ramp"}`)
	if r.At(0, 0) == r.At(1, 0) {
		t.Fatal("ramp generator is flat")
	}
}

// TestSpecMarshalRefusesProcessLocal pins the actionable-refusal contract:
// each process-local knob fails Marshal with ErrNotSerializable and an error
// message naming the field.
func TestSpecMarshalRefusesProcessLocal(t *testing.T) {
	base := func() abft.Spec[float32] {
		init := abft.New[float32](8, 8)
		init.Fill(1)
		return abft.Spec[float32]{
			Op2D: &abft.Op2D[float32]{St: abft.Laplace5[float32](0.2), BC: abft.Clamp},
			Init: init,
		}
	}
	cases := []struct {
		name string
		mut  func(*abft.Spec[float32])
	}{
		{"Pool", func(s *abft.Spec[float32]) { s.Pool = abft.NewPool() }},
		{"InjectSource", func(s *abft.Spec[float32]) {
			s.InjectSource = abft.NewInjector[float32](abft.NewPlan())
		}},
		{"NewTransport", func(s *abft.Spec[float32]) {
			s.NewTransport = func(x, y int, ring bool) abft.Transport[float32] { return nil }
		}},
		{"WrapTransport", func(s *abft.Spec[float32]) {
			s.WrapTransport = func(tr abft.Transport[float32], x, y int, ring bool) abft.Transport[float32] { return tr }
		}},
		{"AfterStep", func(s *abft.Spec[float32]) { s.AfterStep = func(rank, iter int) {} }},
		{"Telemetry", func(s *abft.Spec[float32]) { s.Telemetry = abft.NewTelemetry(-1) }},
		{"Rendezvous", func(s *abft.Spec[float32]) { s.Rendezvous = "127.0.0.1:9999" }},
		{"RecvTimeout", func(s *abft.Spec[float32]) { s.RecvTimeout = 1 }},
		{"DeathDeadline", func(s *abft.Spec[float32]) { s.DeathDeadline = 1 }},
	}
	for _, c := range cases {
		spec := base()
		c.mut(&spec)
		_, err := json.Marshal(spec)
		if err == nil {
			t.Fatalf("%s: marshal succeeded, want ErrNotSerializable", c.name)
		}
		if !errors.Is(err, abft.ErrNotSerializable) {
			t.Fatalf("%s: error %v is not ErrNotSerializable", c.name, err)
		}
		if !strings.Contains(err.Error(), c.name) {
			t.Fatalf("%s: error does not name the field: %v", c.name, err)
		}
		if errors.Is(err, abft.ErrInvalidSpec) {
			t.Fatalf("%s: ErrNotSerializable must not imply ErrInvalidSpec (the spec runs fine in-process)", c.name)
		}
	}
	// The refused specs really do build in-process.
	spec := base()
	spec.Pool = abft.NewPool()
	if _, err := abft.Build(spec); err != nil {
		t.Fatalf("process-local spec should still build in-process: %v", err)
	}
}

// TestParseWireSpecMalformed is the malformed-document table: every defect
// is rejected with the matching typed sentinel.
func TestParseWireSpecMalformed(t *testing.T) {
	resolve := func(doc string) error {
		w, err := abft.ParseWireSpec([]byte(doc))
		if err != nil {
			return err
		}
		_, err = abft.SpecFromWire[float32](w)
		return err
	}
	grid := `"grid":{"nx":8,"ny":8,"generator":"constant","value":1}`
	cases := []struct {
		name string
		doc  string
		want []error
	}{
		{"syntax", `{"stencil":`, []error{abft.ErrBadWireSpec}},
		{"unknown-field", `{"stencil":{"name":"laplace5"},"epsilonn":0.1,` + grid + `}`, []error{abft.ErrBadWireSpec}},
		{"trailing", `{"stencil":{"name":"laplace5"},` + grid + `} {}`, []error{abft.ErrBadWireSpec}},
		{"unknown-stencil", `{"stencil":{"name":"heptadiagonal"},` + grid + `}`, []error{abft.ErrUnknownStencil, abft.ErrBadWireSpec, abft.ErrInvalidSpec}},
		{"arg-count", `{"stencil":{"name":"laplace5","args":[0.2,0.3]},` + grid + `}`, []error{abft.ErrBadWireSpec}},
		{"no-stencil", `{` + grid + `}`, []error{abft.ErrBadWireSpec}},
		{"elem", `{"elem":"float16","stencil":{"name":"laplace5"},` + grid + `}`, []error{abft.ErrBadWireSpec}},
		{"elem-mismatch", `{"elem":"float64","stencil":{"name":"laplace5"},` + grid + `}`, []error{abft.ErrBadWireSpec}},
		{"upload", `{"stencil":{"name":"laplace5"},"grid":{"nx":8,"ny":8,"upload":"abc"}}`, []error{abft.ErrUnresolvedUpload, abft.ErrBadWireSpec}},
		{"two-sources", `{"stencil":{"name":"laplace5"},"grid":{"nx":8,"ny":8,"generator":"uniform","data":[1]}}`, []error{abft.ErrBadWireSpec}},
		{"no-source", `{"stencil":{"name":"laplace5"},"grid":{"nx":8,"ny":8}}`, []error{abft.ErrBadWireSpec}},
		{"negative-nz", `{"stencil":{"name":"laplace5"},"grid":{"nx":8,"ny":8,"nz":-4,"generator":"constant","value":1}}`, []error{abft.ErrBadWireSpec}},
		{"data-len", `{"stencil":{"name":"laplace5"},"grid":{"nx":8,"ny":8,"data":[1,2,3]}}`, []error{abft.ErrBadWireSpec}},
		{"generator", `{"stencil":{"name":"laplace5"},"grid":{"nx":8,"ny":8,"generator":"fractal"}}`, []error{abft.ErrUnknownGenerator, abft.ErrBadWireSpec}},
		{"bc", `{"stencil":{"name":"laplace5"},"bc":"open",` + grid + `}`, []error{abft.ErrBadWireSpec}},
		{"pair-policy", `{"stencil":{"name":"laplace5"},"pairPolicy":"random",` + grid + `}`, []error{abft.ErrBadWireSpec}},
		{"recovery", `{"stencil":{"name":"laplace5"},"recovery":"forward",` + grid + `}`, []error{abft.ErrBadWireSpec}},
	}
	for _, c := range cases {
		err := resolve(c.doc)
		if err == nil {
			t.Fatalf("%s: accepted, want error", c.name)
		}
		for _, want := range c.want {
			if !errors.Is(err, want) {
				t.Fatalf("%s: error %v does not match %v", c.name, err, want)
			}
		}
	}
}

// TestTypedSentinels pins the errors.Is surface of Build itself, the
// 400-vs-500 contract the HTTP layer relies on.
func TestTypedSentinels(t *testing.T) {
	init := abft.New[float32](16, 16)
	init.Fill(1)
	op := &abft.Op2D[float32]{St: abft.Laplace5[float32](0.2), BC: abft.Clamp}

	_, err := abft.Build(abft.Spec[float32]{Scheme: "quantum", Op2D: op, Init: init})
	if !errors.Is(err, abft.ErrUnknownScheme) || !errors.Is(err, abft.ErrInvalidSpec) {
		t.Fatalf("unknown scheme: %v", err)
	}
	_, err = abft.Build(abft.Spec[float32]{Deployment: "mesh", Op2D: op, Init: init})
	if !errors.Is(err, abft.ErrUnknownDeployment) || !errors.Is(err, abft.ErrInvalidSpec) {
		t.Fatalf("unknown deployment: %v", err)
	}
	_, err = abft.Build(abft.Spec[float32]{
		Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init,
		Ranks: 2, Topology: "hypercube",
	})
	if !errors.Is(err, abft.ErrUnknownTopology) || !errors.Is(err, abft.ErrInvalidSpec) {
		t.Fatalf("unknown topology: %v", err)
	}
	_, err = abft.Build(abft.Spec[float32]{
		Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init,
		Ranks: 2, Transport: "smoke-signals",
	})
	if !errors.Is(err, abft.ErrUnknownTransport) || !errors.Is(err, abft.ErrInvalidSpec) {
		t.Fatalf("unknown transport: %v", err)
	}
	_, err = abft.Build(abft.Spec[float32]{
		Scheme: abft.Offline, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
	})
	if !errors.Is(err, abft.ErrInvalidSpec) {
		t.Fatalf("offline cluster: %v", err)
	}
	if errors.Is(err, abft.ErrUnknownScheme) {
		t.Fatalf("offline cluster must not classify as unknown scheme: %v", err)
	}
	// Thin tiles surface dist's sentinel through Build.
	_, err = abft.Build(abft.Spec[float32]{
		Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 16,
	})
	if !errors.Is(err, abft.ErrThinTile) {
		t.Fatalf("thin tile: %v", err)
	}
	// Operator validation carries the stencil package's sentinel.
	tiny := abft.New[float32](1, 8)
	tiny.Fill(1)
	_, err = abft.Build(abft.Spec[float32]{Scheme: abft.Online, Op2D: op, Init: tiny})
	if !errors.Is(err, abft.ErrInvalidOp) {
		t.Fatalf("invalid op: %v", err)
	}
}
