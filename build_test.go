package stencilabft_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	abft "stencilabft"
	"stencilabft/internal/blocks"
	"stencilabft/internal/core"
	"stencilabft/internal/dist"
	"stencilabft/internal/grid"
)

// The matrix test drives Build over every Scheme × Deployment × Boundary
// combination and checks that a valid cell's error-free run is bit-identical
// to the protector the pre-redesign constructors assembled (the internal
// package entry points Build's registry wraps), while an unsupported cell
// fails loudly at Build time instead of mid-run.

const (
	matrixNx, matrixNy = 33, 40
	matrixIters        = 12
	matrixRanks        = 3
	matrixBlock        = 16
)

func matrixOp(bc grid.Boundary) *abft.Op2D[float64] {
	return &abft.Op2D[float64]{St: abft.Laplace5(0.2), BC: bc, BCValue: 42}
}

func matrixInit() *abft.Grid[float64] {
	g := abft.New[float64](matrixNx, matrixNy)
	g.FillFunc(func(x, y int) float64 { return 80 + float64((x*31+y*17)%23) + 0.25*float64(y) })
	return g
}

func strictDetector() abft.Detector[float64] {
	return abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1}
}

// legacyRun assembles the cell's protector the pre-Build way (the internal
// constructors the deprecated wrappers used to call directly) and runs it
// error-free.
func legacyRun(t *testing.T, s abft.Scheme, d abft.Deployment, bc grid.Boundary) *abft.Grid[float64] {
	t.Helper()
	op, init := matrixOp(bc), matrixInit()
	copt := core.Options[float64]{Detector: strictDetector()}
	switch {
	case d == abft.Clustered:
		c, err := dist.NewCluster(op, init, matrixRanks, dist.Options[float64]{Detector: strictDetector()})
		if err != nil {
			t.Fatal(err)
		}
		c.Run(matrixIters)
		return c.Gather()
	case s == abft.Blocked:
		p, err := blocks.New(op, init, matrixBlock, matrixBlock, blocks.Options[float64]{Detector: strictDetector()})
		if err != nil {
			t.Fatal(err)
		}
		p.Run(matrixIters)
		return p.Grid()
	default:
		p, err := core.New2D(string(s), op, init, copt)
		if err != nil {
			t.Fatal(err)
		}
		p.Run(matrixIters)
		p.Finalize()
		return p.Grid()
	}
}

func TestBuildMatrixMatchesLegacy(t *testing.T) {
	schemes := []abft.Scheme{abft.None, abft.Online, abft.Offline, abft.Blocked}
	deployments := []abft.Deployment{abft.Local, abft.Clustered}
	boundaries := []grid.Boundary{grid.Clamp, grid.Periodic, grid.Mirror, grid.Constant, grid.Zero}

	for _, s := range schemes {
		for _, d := range deployments {
			supported := d == abft.Local || s == abft.Online
			for _, bc := range boundaries {
				t.Run(fmt.Sprintf("%s/%s/%s", s, d, bc), func(t *testing.T) {
					spec := abft.Spec[float64]{
						Scheme:     s,
						Deployment: d,
						Op2D:       matrixOp(bc),
						Init:       matrixInit(),
						Detector:   strictDetector(),
					}
					if d == abft.Clustered {
						spec.Ranks = matrixRanks
					}
					if s == abft.Blocked {
						spec.BlockX, spec.BlockY = matrixBlock, matrixBlock
					}
					p, err := abft.Build(spec)
					if !supported {
						if err == nil {
							t.Fatalf("unsupported cell %s/%s built without error", s, d)
						}
						return
					}
					if err != nil {
						t.Fatal(err)
					}
					p.Run(matrixIters)
					p.Finalize()
					if st := p.Stats(); st.Detections != 0 {
						t.Fatalf("false positive on an error-free run: %+v", st)
					}
					want := legacyRun(t, s, d, bc)
					if diff := p.Grid().MaxAbsDiff(want); diff != 0 {
						t.Fatalf("Build result deviates from the legacy constructor's by %g", diff)
					}
				})
			}
		}
	}
}

// TestBuildMatrix3D covers the 3-D cells of the local deployment against
// the internal New3D constructor.
func TestBuildMatrix3D(t *testing.T) {
	op3 := func(bc grid.Boundary) *abft.Op3D[float64] {
		return &abft.Op3D[float64]{
			St: abft.SevenPoint3D[float64](0.5, 0.08, 0.08, 0.09, 0.09, 0.06, 0.10),
			BC: bc, BCValue: 42,
		}
	}
	init3 := func() *abft.Grid3D[float64] {
		g := abft.New3D[float64](14, 12, 4)
		g.FillFunc(func(x, y, z int) float64 { return 300 + float64((x*7+y*5+z*3)%13) })
		return g
	}
	for _, s := range []abft.Scheme{abft.None, abft.Online, abft.Offline} {
		for _, bc := range []grid.Boundary{grid.Clamp, grid.Periodic, grid.Zero} {
			t.Run(fmt.Sprintf("%s/%s", s, bc), func(t *testing.T) {
				p, err := abft.Build(abft.Spec[float64]{
					Scheme:   s,
					Op3D:     op3(bc),
					Init3D:   init3(),
					Detector: strictDetector(),
				})
				if err != nil {
					t.Fatal(err)
				}
				p.Run(matrixIters)
				p.Finalize()

				want, err := core.New3D(string(s), op3(bc), init3(), core.Options[float64]{Detector: strictDetector()})
				if err != nil {
					t.Fatal(err)
				}
				want.Run(matrixIters)
				want.Finalize()
				if diff := p.Grid3D().MaxAbsDiff(want.Grid3D()); diff != 0 {
					t.Fatalf("Build 3-D result deviates from the legacy constructor's by %g", diff)
				}
			})
		}
	}
}

// TestBuildClusterTopologies drives the factory across the cluster
// topology surface: the Ranks shorthand, the explicit bands topology and
// the equivalent 1-column grid must produce bit-identical runs, and a
// proper 2-D rank grid must match the single-process reference while
// tagging its stats with the grid shape.
func TestBuildClusterTopologies(t *testing.T) {
	ref, err := abft.Build(abft.Spec[float64]{Op2D: matrixOp(grid.Clamp), Init: matrixInit()})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(matrixIters)

	build := func(t *testing.T, spec abft.Spec[float64]) *abft.Grid[float64] {
		t.Helper()
		spec.Scheme = abft.Online
		spec.Deployment = abft.Clustered
		spec.Op2D, spec.Init = matrixOp(grid.Clamp), matrixInit()
		spec.Detector = strictDetector()
		p, err := abft.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		p.Run(matrixIters)
		if st := p.Stats(); st.Detections != 0 {
			t.Fatalf("false positive: %+v", st)
		}
		return p.Grid()
	}

	shorthand := build(t, abft.Spec[float64]{Ranks: matrixRanks})
	if diff := shorthand.MaxAbsDiff(ref.Grid()); diff != 0 {
		t.Fatalf("Ranks shorthand deviates from reference by %g", diff)
	}
	bands := build(t, abft.Spec[float64]{Ranks: matrixRanks, Topology: abft.TopoBands})
	if diff := bands.MaxAbsDiff(shorthand); diff != 0 {
		t.Fatalf("explicit bands topology deviates from the Ranks shorthand by %g", diff)
	}
	column := build(t, abft.Spec[float64]{RanksX: 1, RanksY: matrixRanks})
	if diff := column.MaxAbsDiff(shorthand); diff != 0 {
		t.Fatalf("1-column grid deviates from the Ranks shorthand by %g", diff)
	}
	gridded := build(t, abft.Spec[float64]{RanksX: 3, RanksY: 2})
	if diff := gridded.MaxAbsDiff(ref.Grid()); diff != 0 {
		t.Fatalf("2-D rank grid deviates from reference by %g", diff)
	}

	p, err := abft.Build(abft.Spec[float64]{
		Scheme: abft.Online, Deployment: abft.Clustered,
		Op2D: matrixOp(grid.Clamp), Init: matrixInit(),
		Detector: strictDetector(), RanksX: 3, RanksY: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(1)
	if st := p.Stats(); st.Topology != "grid 2x3" {
		t.Fatalf("grid run topology %q", st.Topology)
	}
	if c, ok := p.(*abft.Cluster[float64]); !ok {
		t.Fatalf("grid cluster built %T", p)
	} else if c.Ranks() != 6 {
		t.Fatalf("grid cluster has %d ranks", c.Ranks())
	}
}

// TestBuildCluster3D covers the 3-D face of the cluster deployment: a
// layer-decomposed run built from a Spec must match the single-process 3-D
// reference bit for bit, expose per-rank stats through the concrete
// Cluster3D type, and default its topology to layers.
func TestBuildCluster3D(t *testing.T) {
	op3 := func() *abft.Op3D[float64] {
		return &abft.Op3D[float64]{
			St: abft.SevenPoint3D[float64](0.5, 0.08, 0.08, 0.09, 0.09, 0.06, 0.10),
			BC: grid.Clamp,
		}
	}
	init3 := func() *abft.Grid3D[float64] {
		g := abft.New3D[float64](14, 12, 6)
		g.FillFunc(func(x, y, z int) float64 { return 300 + float64((x*7+y*5+z*3)%13) })
		return g
	}
	ref, err := abft.Build(abft.Spec[float64]{Op3D: op3(), Init3D: init3()})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(matrixIters)

	for _, topo := range []abft.Topology{"", abft.TopoLayers} {
		p, err := abft.Build(abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Topology: topo,
			Op3D: op3(), Init3D: init3(), Ranks: 2, Detector: strictDetector(),
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Run(matrixIters)
		if st := p.Stats(); st.Detections != 0 || st.Topology != "layers 2" {
			t.Fatalf("3-D cluster stats: %+v", st)
		}
		if diff := p.Grid3D().MaxAbsDiff(ref.Grid3D()); diff != 0 {
			t.Fatalf("3-D cluster deviates from reference by %g", diff)
		}
		c, ok := p.(*abft.Cluster3D[float64])
		if !ok {
			t.Fatalf("3-D cluster built %T", p)
		}
		if rs := c.RankStats(); len(rs) != 2 || rs[0].HaloByDir[1] != matrixIters {
			t.Fatalf("per-rank stats: %+v", rs)
		}
	}
}

// TestBuildInvalidSpecs covers the factory's error paths: every malformed
// or unsupported spec must fail at Build time with a descriptive error.
func TestBuildInvalidSpecs(t *testing.T) {
	op, init := matrixOp(grid.Clamp), matrixInit()
	op3 := &abft.Op3D[float64]{St: abft.SevenPoint3D[float64](0.5, 0.08, 0.08, 0.09, 0.09, 0.06, 0.10), BC: grid.Clamp}
	init3 := abft.New3D[float64](14, 12, 4)

	cases := []struct {
		name string
		spec abft.Spec[float64]
	}{
		{"cluster+3D with a 2-D topology", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op3D: op3, Init3D: init3, Ranks: 2,
			Topology: abft.TopoGrid}},
		{"cluster+3D with a rank grid (layer clusters take Ranks)", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op3D: op3, Init3D: init3,
			RanksX: 1, RanksY: 2}},
		{"cluster+2D with the layers topology", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Topology: abft.TopoLayers}},
		{"ranks and rank grid both set", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			RanksX: 2, RanksY: 2}},
		{"rank grid with a zero factor", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, RanksX: 2}},
		{"bands topology with rank columns", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init,
			RanksX: 2, RanksY: 2, Topology: abft.TopoBands}},
		{"unknown topology", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Topology: "hypercube"}},
		{"topology on local", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init, Topology: abft.TopoGrid}},
		{"rank grid too fine for the stencil", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init,
			RanksX: matrixNx, RanksY: 1}},
		{"blocked+offline (block size on a non-blocked scheme)", abft.Spec[float64]{
			Scheme: abft.Offline, Op2D: op, Init: init, BlockX: matrixBlock, BlockY: matrixBlock}},
		{"ranks<1", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 0}},
		{"negative ranks", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: -2}},
		{"offline+cluster", abft.Spec[float64]{
			Scheme: abft.Offline, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2}},
		{"blocked+cluster", abft.Spec[float64]{
			Scheme: abft.Blocked, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			BlockX: matrixBlock, BlockY: matrixBlock}},
		{"blocked+3D", abft.Spec[float64]{
			Scheme: abft.Blocked, Op3D: op3, Init3D: init3, BlockX: matrixBlock, BlockY: matrixBlock}},
		{"blocked without block size", abft.Spec[float64]{
			Scheme: abft.Blocked, Op2D: op, Init: init}},
		{"no operator", abft.Spec[float64]{Scheme: abft.Online}},
		{"2D op without init", abft.Spec[float64]{Scheme: abft.Online, Op2D: op}},
		{"3D op without init", abft.Spec[float64]{Scheme: abft.Online, Op3D: op3}},
		{"both dims", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init, Op3D: op3, Init3D: init3}},
		{"unknown scheme", abft.Spec[float64]{Scheme: "quantum", Op2D: op, Init: init}},
		{"unknown deployment", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: "orbital", Op2D: op, Init: init}},
		{"inject source on cluster", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			InjectSource: abft.NewInjector[float64](nil)}},
		{"period on cluster", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Period: 16}},
		{"recovery on cluster", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Recovery: abft.ConeRecovery}},
		{"paper-exact correction on cluster", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			PaperExactCorrection: true}},
		{"ranks on local", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init, Ranks: 4}},
		{"rank grid on local", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init, RanksX: 2, RanksY: 2}},
		{"transport on local", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init,
			NewTransport: func(rx, ry int, ring bool) abft.Transport[float64] {
				return abft.NewChanTransport[float64](rx, ry, ring)
			}}},
		{"transport kind on local", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init, Transport: abft.TransportChan}},
		{"unknown transport kind", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Transport: "carrier-pigeon"}},
		{"named and custom transport together", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Transport: abft.TransportChan,
			NewTransport: func(rx, ry int, ring bool) abft.Transport[float64] {
				return abft.NewChanTransport[float64](rx, ry, ring)
			}}},
		{"tcp without rendezvous", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Transport: abft.TransportTCP}},
		{"tcp rank out of range", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Transport: abft.TransportTCP, Rendezvous: "127.0.0.1:9", Rank: 2}},
		{"tcp on a 3-D layer cluster", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op3D: op3, Init3D: init3, Ranks: 2,
			Transport: abft.TransportTCP, Rendezvous: "127.0.0.1:9"}},
		{"rendezvous without tcp", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Rendezvous: "127.0.0.1:9"}},
		{"rank without tcp", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Rank: 1}},
		{"rank/rendezvous on local", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init, Rendezvous: "127.0.0.1:9"}},
		{"bind on local", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init, Bind: "10.0.0.5:0"}},
		{"bind without tcp", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			Bind: "10.0.0.5:0"}},
		{"death deadline without tcp", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			DeathDeadline: time.Second}},
		{"conn hook without tcp", abft.Spec[float64]{
			Scheme: abft.Online, Deployment: abft.Clustered, Op2D: op, Init: init, Ranks: 2,
			WrapConn: func(c net.Conn, from, to int, d abft.Dir) net.Conn { return c }}},
		{"recv timeout on local", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init, RecvTimeout: time.Second}},
		{"transport wrapper on local", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init,
			WrapTransport: func(tr abft.Transport[float64], rx, ry int, ring bool) abft.Transport[float64] {
				return tr
			}}},
		{"death deadline on local", abft.Spec[float64]{
			Scheme: abft.Online, Op2D: op, Init: init, DeathDeadline: time.Second}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := abft.Build(tc.spec); err == nil {
				t.Fatalf("invalid spec accepted: %+v", tc.spec)
			}
		})
	}
}

// TestParseHelpers pins the CLI string → registry key path.
func TestParseHelpers(t *testing.T) {
	for _, name := range []string{"none", "online", "offline", "blocked"} {
		s, err := abft.ParseScheme(name)
		if err != nil || string(s) != name {
			t.Fatalf("ParseScheme(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := abft.ParseScheme("bogus"); err == nil {
		t.Fatal("bogus scheme parsed")
	}
	for _, name := range []string{"local", "cluster"} {
		d, err := abft.ParseDeployment(name)
		if err != nil || string(d) != name {
			t.Fatalf("ParseDeployment(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := abft.ParseDeployment("bogus"); err == nil {
		t.Fatal("bogus deployment parsed")
	}
	keys := abft.BuildKeys()
	if len(keys) != 5 {
		t.Fatalf("registry keys %v", keys)
	}
	for _, name := range []string{"chan", "tcp"} {
		k, err := abft.ParseTransport(name)
		if err != nil || string(k) != name {
			t.Fatalf("ParseTransport(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := abft.ParseTransport("carrier-pigeon"); err == nil {
		t.Fatal("bogus transport parsed")
	}
}

// buildTCPHosts builds one single-rank tcp protector per rank of a 2x2
// grid, concurrently — four Build calls standing in for four OS processes
// meeting at a loopback rendezvous.
func buildTCPHosts(t *testing.T, base abft.Spec[float64], ranks int) []abft.Protector[float64] {
	t.Helper()
	// Reserve a port, free it, let rank 0's Build re-bind it. Another
	// process can steal the port in that window, so the whole bootstrap
	// retries on a fresh port — the same exposure stencilrun -launch has.
	for attempt := 0; ; attempt++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rendezvous := ln.Addr().String()
		ln.Close()

		hosts := make([]abft.Protector[float64], ranks)
		errs := make([]error, ranks)
		var wg sync.WaitGroup
		for k := 0; k < ranks; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				spec := base
				spec.Transport = abft.TransportTCP
				spec.Rank = k
				spec.Rendezvous = rendezvous
				hosts[k], errs[k] = abft.Build(spec)
			}(k)
		}
		wg.Wait()
		failed := false
		for k, err := range errs {
			if err != nil {
				failed = true
				if attempt >= 2 {
					t.Fatalf("Build for tcp rank %d: %v", k, err)
				}
			}
		}
		if failed {
			for _, p := range hosts {
				if c, ok := p.(*abft.Cluster[float64]); ok {
					c.Close()
				}
			}
			t.Logf("tcp bootstrap attempt %d failed (port stolen in the handover window?); retrying", attempt)
			continue
		}
		t.Cleanup(func() {
			for _, p := range hosts {
				if c, ok := p.(*abft.Cluster[float64]); ok {
					c.Close()
				}
			}
		})
		return hosts
	}
}

// runTCPHosts advances every host by iters in lockstep (each host drives
// its own rank; the transport's barrier couples them) and returns the
// union of the gathered tiles plus the merged stats.
func runTCPHosts(t *testing.T, hosts []abft.Protector[float64], iters, nx, ny int) (*abft.Grid[float64], abft.Stats) {
	t.Helper()
	var wg sync.WaitGroup
	for _, p := range hosts {
		wg.Add(1)
		go func(p abft.Protector[float64]) {
			defer wg.Done()
			p.Run(iters)
		}(p)
	}
	wg.Wait()
	global := abft.New[float64](nx, ny)
	var merged abft.Stats
	for _, p := range hosts {
		c := p.(*abft.Cluster[float64])
		part := c.Grid()
		for _, id := range c.LocalRanks() {
			tile := c.Tile(id)
			for y := tile.Y0; y < tile.Y1; y++ {
				copy(global.Row(y)[tile.X0:tile.X1], part.Row(y)[tile.X0:tile.X1])
			}
		}
		st := p.Stats()
		st.Iterations = 0 // each host reports the same lockstep count; count it once below
		merged = merged.Merge(st)
	}
	merged.Iterations = hosts[0].Stats().Iterations
	return global, merged
}

// TestBuildTCPClusterMultiHost runs a 2x2 tcp cluster as four single-rank
// Build calls over loopback sockets and checks the union of the gathered
// tiles is bit-identical to the single-process reference — the Build-level
// version of what stencilrun -launch runs as real OS processes in CI.
func TestBuildTCPClusterMultiHost(t *testing.T) {
	const nx, ny, iters = 48, 40, 12
	op := &abft.Op2D[float64]{St: abft.Laplace5[float64](0.22), BC: abft.Mirror}
	init := abft.New[float64](nx, ny)
	init.FillFunc(func(x, y int) float64 { return float64(x*31+y*17) / 7 })

	ref, err := abft.Build(abft.Spec[float64]{Op2D: op, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(iters)

	base := abft.Spec[float64]{
		Scheme: abft.Online, Deployment: abft.Clustered,
		Op2D: op, Init: init, RanksX: 2, RanksY: 2,
	}
	hosts := buildTCPHosts(t, base, 4)
	global, merged := runTCPHosts(t, hosts, iters, nx, ny)

	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if global.At(x, y) != ref.Grid().At(x, y) {
				t.Fatalf("gathered grid differs from the reference at (%d,%d): %v != %v",
					x, y, global.At(x, y), ref.Grid().At(x, y))
			}
		}
	}
	if merged.HaloExchanges == 0 || merged.Verifications == 0 {
		t.Fatalf("merged stats look empty: %+v", merged)
	}
}

// TestBuildTCPClusterInjection checks a global fault plan routed by four
// independent single-rank hosts is applied exactly once cluster-wide:
// every host routes the same plan, only the owner injects, and that owner
// detects and repairs locally.
func TestBuildTCPClusterInjection(t *testing.T) {
	const nx, ny, iters = 48, 40, 12
	op := &abft.Op2D[float64]{St: abft.Laplace5[float64](0.22), BC: abft.Clamp}
	init := abft.New[float64](nx, ny)
	init.FillFunc(func(x, y int) float64 { return 100 + float64((x+y)%13) })

	base := abft.Spec[float64]{
		Scheme: abft.Online, Deployment: abft.Clustered,
		Op2D: op, Init: init, RanksX: 2, RanksY: 2,
		Detector: abft.Detector[float64]{Epsilon: 1e-9, AbsFloor: 1},
		Inject:   abft.NewPlan(abft.Injection{Iteration: 5, X: 30, Y: 10, Bit: 55}),
	}
	hosts := buildTCPHosts(t, base, 4)
	_, merged := runTCPHosts(t, hosts, iters, nx, ny)

	if merged.Detections != 1 || merged.CorrectedPoints != 1 {
		t.Fatalf("injected flip not handled exactly once across hosts: %+v", merged)
	}
	// The point (30, 10) belongs to rank 1 (top-right tile of the 2x2
	// grid); the other hosts must have stayed clean.
	for k, p := range hosts {
		st := p.Stats()
		if k == 1 && st.Detections != 1 {
			t.Fatalf("owning host missed the flip: %+v", st)
		}
		if k != 1 && st.Detections != 0 {
			t.Fatalf("non-owning host %d detected: %+v", k, st)
		}
	}
}
